"""The synthetic benchmark generator (Section 6.1, "Synthetic dataset").

Synth-N tables have N rows whose source strings are random alphanumeric
strings of length in [20, 35]; Synth-NL tables use lengths in [40, 70].  For
every source table a set of ground-truth transformations is generated — each
with ``p = 2`` placeholders and 1–2 literal blocks of length 1–5, using valid
random parameters — and each target row is produced by applying a randomly
chosen ground-truth transformation to the corresponding source row.

The generator also exposes single-table construction with explicit length
ranges so the scalability experiments (Figures 3 and 4) can sweep the number
of rows and the row length independently.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.core.transformation import Transformation
from repro.core.units import Literal, Substr
from repro.datasets.base import BenchmarkDataset, TablePair
from repro.table.table import Table

#: Alphabet of the random source strings (alphanumeric, as in the paper).
_SOURCE_ALPHABET = string.ascii_lowercase + string.digits

#: Alphabet of literal blocks; includes separators so the separator-splitting
#: logic of the discovery engine is exercised.
_LITERAL_ALPHABET = string.ascii_lowercase + string.digits + " .-_@/"


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic table pair.

    The defaults correspond to Synth-50 in the paper; ``long_rows`` switches
    to the Synth-NL length range [40, 70].
    """

    num_rows: int = 50
    min_length: int = 20
    max_length: int = 35
    num_transformations: int = 3
    placeholders_per_transformation: int = 2
    min_literals: int = 1
    max_literals: int = 2
    min_literal_length: int = 1
    max_literal_length: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {self.num_rows}")
        if self.min_length < 2:
            raise ValueError(f"min_length must be >= 2, got {self.min_length}")
        if self.max_length < self.min_length:
            raise ValueError(
                f"max_length ({self.max_length}) must be >= "
                f"min_length ({self.min_length})"
            )
        if self.num_transformations < 1:
            raise ValueError(
                "num_transformations must be >= 1, got "
                f"{self.num_transformations}"
            )
        if self.placeholders_per_transformation < 1:
            raise ValueError(
                "placeholders_per_transformation must be >= 1, got "
                f"{self.placeholders_per_transformation}"
            )

    @classmethod
    def synth(cls, num_rows: int, *, long_rows: bool = False, seed: int = 0) -> "SyntheticConfig":
        """Synth-N (``long_rows=False``) or Synth-NL (``long_rows=True``)."""
        if long_rows:
            return cls(num_rows=num_rows, min_length=40, max_length=70, seed=seed)
        return cls(num_rows=num_rows, min_length=20, max_length=35, seed=seed)


def _random_source(rng: random.Random, config: SyntheticConfig) -> str:
    length = rng.randint(config.min_length, config.max_length)
    return "".join(rng.choice(_SOURCE_ALPHABET) for _ in range(length))


def _random_literal(rng: random.Random, config: SyntheticConfig) -> Literal:
    length = rng.randint(config.min_literal_length, config.max_literal_length)
    return Literal("".join(rng.choice(_LITERAL_ALPHABET) for _ in range(length)))


def _random_transformation(rng: random.Random, config: SyntheticConfig) -> Transformation:
    """A random ground-truth transformation valid for every source string.

    Placeholders are ``Substr`` units whose ranges fall inside the minimum
    source length, so the transformation applies to every row.  Literal blocks
    are interleaved at random positions (always at least one separator-bearing
    literal between two placeholders, so the generated targets have visible
    structure).
    """
    placeholders = []
    for _ in range(config.placeholders_per_transformation):
        # Placeholder blocks of at least 4 characters: long enough for the
        # n-gram row matcher (n0 = 4) to link source and target rows, matching
        # the structure of the paper's generator.
        start = rng.randint(0, max(0, config.min_length - 5))
        end = rng.randint(
            min(start + 4, config.min_length), min(config.min_length, start + 12)
        )
        placeholders.append(Substr(start, end))

    num_literals = rng.randint(config.min_literals, config.max_literals)
    literals = [_random_literal(rng, config) for _ in range(num_literals)]

    # Interleave: place literals between/around placeholders at random slots.
    units: list = list(placeholders)
    for literal in literals:
        position = rng.randint(0, len(units))
        units.insert(position, literal)
    return Transformation(units).simplified()


def generate_table_pair(
    config: SyntheticConfig, *, name: str = "synthetic"
) -> tuple[TablePair, list[Transformation]]:
    """Generate one synthetic pair plus its ground-truth transformations."""
    rng = random.Random(config.seed)
    sources = [_random_source(rng, config) for _ in range(config.num_rows)]
    transformations = [
        _random_transformation(rng, config)
        for _ in range(config.num_transformations)
    ]
    targets: list[str] = []
    applied: list[int] = []
    for source in sources:
        index = rng.randrange(len(transformations))
        output = transformations[index].apply(source)
        # Ground-truth transformations are valid for every source by
        # construction, so output is never None.
        assert output is not None
        targets.append(output)
        applied.append(index)

    source_table = Table(
        {"id": [str(i) for i in range(config.num_rows)], "value": sources},
        name=f"{name}_source",
    )
    target_table = Table(
        {
            "id": [str(i) for i in range(config.num_rows)],
            "value": targets,
            "rule": [str(i) for i in applied],
        },
        name=f"{name}_target",
    )
    pair = TablePair(
        name=name,
        source=source_table,
        target=target_table,
        source_column="value",
        target_column="value",
        golden_pairs=[(i, i) for i in range(config.num_rows)],
        description=(
            f"synthetic pair: {config.num_rows} rows, source length in "
            f"[{config.min_length}, {config.max_length}], "
            f"{config.num_transformations} ground-truth transformations"
        ),
    )
    return pair, transformations


def generate_synthetic_dataset(
    num_rows: int,
    *,
    long_rows: bool = False,
    num_tables: int = 10,
    seed: int = 0,
) -> BenchmarkDataset:
    """Generate a Synth-N / Synth-NL dataset of *num_tables* independent pairs.

    The paper averages results over 10 independently generated tables with the
    same parameters; ``num_tables`` controls that count.
    """
    suffix = "L" if long_rows else ""
    pairs = []
    for table_index in range(num_tables):
        config = SyntheticConfig.synth(
            num_rows, long_rows=long_rows, seed=seed + table_index
        )
        pair, _ = generate_table_pair(
            config, name=f"synth-{num_rows}{suffix}-{table_index}"
        )
        pairs.append(pair)
    return BenchmarkDataset(
        name=f"Synth-{num_rows}{suffix}",
        pairs=pairs,
        description=(
            f"synthetic tables with {num_rows} rows and "
            f"{'long' if long_rows else 'short'} source strings"
        ),
    )


def generate_length_sweep_pair(
    *,
    num_rows: int,
    row_length: int,
    seed: int = 0,
    name: str | None = None,
) -> tuple[TablePair, list[Transformation]]:
    """A synthetic pair with a fixed source length (for Figures 3 and 4b)."""
    config = SyntheticConfig(
        num_rows=num_rows,
        min_length=row_length,
        max_length=row_length,
        seed=seed,
    )
    return generate_table_pair(
        config, name=name or f"synth-len{row_length}-rows{num_rows}"
    )
