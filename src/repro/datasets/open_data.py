"""Simulated open-government-data benchmark (Section 6.1, "Open Governmental").

The original benchmark joins ~3 million Edmonton property assessments with a
sample of Canadian white-pages listings on the address field.  Neither source
can be redistributed offline, so this module generates an address corpus with
the structural properties that drive the paper's findings:

* a source column of white-pages-style listings (name + verbose address) and
  a much larger target column of assessment-style addresses,
* only a subset of source rows has a true match (golden pairs are known),
* addresses share heavy, low-information n-grams ("Street NW", "Edmonton"),
  so the n-gram row matcher produces a flood of false candidate pairs —
  recall stays high but precision collapses (Table 1 reports P = 0.01),
* a handful of formatting relationships map listing addresses to assessment
  addresses, so discovery with sampling + a support threshold still finds the
  right transformations (Table 2).

The scale defaults to 3,808 source rows (as in Table 1) with a configurable
target size, so the benchmark runs on a laptop while preserving the noise
structure of the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets import wordlists
from repro.datasets.base import TablePair
from repro.table.table import Table

#: Number of source rows reported for the open-data benchmark in Table 1.
DEFAULT_SOURCE_ROWS = 3808

#: Default number of target (assessment) rows.  The original has ~3 million;
#: the default keeps the same collision structure at laptop scale.
DEFAULT_TARGET_ROWS = 8000


@dataclass(frozen=True)
class _Address:
    """A structured address rendered differently on the two sides."""

    house_number: str
    street_number: str
    street_type: str
    street_abbrev: str
    quadrant: str
    city: str
    postal: str


def _sample_address(rng: random.Random) -> _Address:
    street_type = rng.choice(wordlists.STREET_TYPES[:5])  # Street/Avenue heavy
    return _Address(
        house_number=str(rng.randint(1000, 18999)),
        street_number=str(rng.randint(1, 180)),
        street_type=street_type,
        street_abbrev=wordlists.STREET_TYPE_ABBREVIATIONS[street_type],
        quadrant=rng.choice(wordlists.QUADRANTS),
        city="Edmonton",
        postal=(
            f"T{rng.randint(5, 6)}{rng.choice('ABCEGHJKLMNPRSTVWXYZ')} "
            f"{rng.randint(0, 9)}{rng.choice('ABCEGHJKLMNPRSTVWXYZ')}{rng.randint(0, 9)}"
        ),
    )


def _assessment_format(address: _Address) -> str:
    """Assessment-style rendering: '10223 106 STREET NW'."""
    return (
        f"{address.house_number} {address.street_number} "
        f"{address.street_type} {address.quadrant}"
    )


def _listing_formats(address: _Address, rng: random.Random) -> str:
    """White-pages rendering: several verbose variants of the same address."""
    variant = rng.randrange(3)
    if variant == 0:
        return (
            f"{address.house_number} - {address.street_number} "
            f"{address.street_type} {address.quadrant}, {address.city}"
        )
    if variant == 1:
        return (
            f"{address.house_number} {address.street_number} "
            f"{address.street_type} {address.quadrant}, {address.city}, AB "
            f"{address.postal}"
        )
    return (
        f"{address.house_number} {address.street_number} "
        f"{address.street_abbrev} {address.quadrant}, {address.city}"
    )


def generate_open_data(
    *,
    num_source_rows: int = DEFAULT_SOURCE_ROWS,
    num_target_rows: int = DEFAULT_TARGET_ROWS,
    match_rate: float = 0.85,
    seed: int = 0,
) -> TablePair:
    """Generate the open-data benchmark pair.

    ``match_rate`` is the fraction of source (listing) rows whose address
    exists in the assessment table; the remaining listings have no true match
    (out-of-city addresses, typos in the original data).
    """
    if num_source_rows < 1:
        raise ValueError(f"num_source_rows must be >= 1, got {num_source_rows}")
    if num_target_rows < 1:
        raise ValueError(f"num_target_rows must be >= 1, got {num_target_rows}")
    if not 0.0 <= match_rate <= 1.0:
        raise ValueError(f"match_rate must be in [0, 1], got {match_rate}")

    rng = random.Random(seed)

    # Target (assessment) addresses first; a subset of them is referenced by
    # the source listings.
    target_addresses = [_sample_address(rng) for _ in range(num_target_rows)]
    target_values = [_assessment_format(a) for a in target_addresses]
    assessed_value = [str(rng.randint(150, 1800) * 1000) for _ in target_addresses]

    source_values: list[str] = []
    owner_names: list[str] = []
    golden: list[tuple[int, int]] = []
    for source_row in range(num_source_rows):
        owner = (
            f"{rng.choice(wordlists.LAST_NAMES)}, {rng.choice(wordlists.FIRST_NAMES)}"
        )
        owner_names.append(owner)
        if rng.random() < match_rate:
            target_row = rng.randrange(num_target_rows)
            address = target_addresses[target_row]
            source_values.append(_listing_formats(address, rng))
            golden.append((source_row, target_row))
        else:
            address = _sample_address(rng)
            source_values.append(_listing_formats(address, rng))

    source = Table(
        {"address": source_values, "name": owner_names},
        name="white_pages",
    )
    target = Table(
        {"address": target_values, "assessed_value": assessed_value},
        name="property_assessments",
    )
    return TablePair(
        name="open-data",
        source=source,
        target=target,
        source_column="address",
        target_column="address",
        golden_pairs=golden,
        description=(
            "simulated open-data benchmark: white-pages listings joined with "
            "property-assessment addresses"
        ),
    )
