"""Dataset registry: build any benchmark dataset by name.

Benchmarks and examples refer to datasets by the names used in the paper's
tables ("web", "spreadsheet", "open", "synth-50", "synth-50L", "synth-500",
"synth-500L").  ``load_dataset`` accepts a ``scale`` argument so tests and
quick runs can use smaller instances with the same structure.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.datasets.base import BenchmarkDataset
from repro.datasets.open_data import generate_open_data
from repro.datasets.spreadsheet import generate_spreadsheet_dataset
from repro.datasets.synthetic import generate_synthetic_dataset
from repro.datasets.web_tables import generate_web_tables_dataset


def _web(scale: float, seed: int) -> BenchmarkDataset:
    num_pairs = max(1, int(round(31 * scale)))
    num_rows = max(5, int(round(92 * scale)))
    return generate_web_tables_dataset(
        num_pairs=num_pairs, num_rows=num_rows, seed=seed
    )


def _spreadsheet(scale: float, seed: int) -> BenchmarkDataset:
    num_pairs = max(1, int(round(108 * scale)))
    num_rows = max(5, int(round(34 * scale)))
    return generate_spreadsheet_dataset(
        num_pairs=num_pairs, num_rows=num_rows, seed=seed
    )


def _open(scale: float, seed: int) -> BenchmarkDataset:
    pair = generate_open_data(
        num_source_rows=max(20, int(round(3808 * scale))),
        num_target_rows=max(40, int(round(8000 * scale))),
        seed=seed,
    )
    return BenchmarkDataset(name="open-data", pairs=[pair], description=pair.description)


def _synth(num_rows: int, long_rows: bool) -> Callable[[float, int], BenchmarkDataset]:
    def build(scale: float, seed: int) -> BenchmarkDataset:
        num_tables = max(1, int(round(10 * scale)))
        return generate_synthetic_dataset(
            num_rows, long_rows=long_rows, num_tables=num_tables, seed=seed
        )

    return build


_REGISTRY: dict[str, Callable[[float, int], BenchmarkDataset]] = {
    "web": _web,
    "spreadsheet": _spreadsheet,
    "open": _open,
    "synth-50": _synth(50, long_rows=False),
    "synth-50L": _synth(50, long_rows=True),
    "synth-500": _synth(500, long_rows=False),
    "synth-500L": _synth(500, long_rows=True),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 0) -> BenchmarkDataset:
    """Build the dataset *name* at the given *scale* (1.0 = paper-scale)."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return builder(scale, seed)
