"""Benchmark-tracked performance harness.

:class:`~repro.perf.runner.BenchmarkRunner` times the pipeline's hot stages
(row matching, transformation generation, coverage, cover selection, and the
artifact layer's apply-only join — its own ``apply_only`` stage, so BENCH
files track serving throughput separately from training cost) on a
synthetic size ladder and writes ``BENCH_<name>.json`` reports, so the perf
trajectory of the reproduction is tracked in-repo from PR to PR.  Every run
can include the preserved seed implementations
(:class:`~repro.matching.reference.ReferenceRowMatcher`, unbatched coverage)
next to the packed fast path, giving a before/after comparison — and a
byte-identical-results check — in one report.  The matching ladder
additionally runs the prefix-filtered setsim engine
(:mod:`repro.matching.setsim`) head-to-head against the n-gram engines on
identical inputs, recording the candidate-pruning ratio (post-filter
candidates / all pairs) next to the wall time.

Run it with ``python -m repro.perf`` (see ``--help``); ``--smoke`` executes
the smallest ladder rung only and fails loudly when stage timings are missing
or outputs are empty, which CI uses to keep the hot path honest.  The
``--workers`` axis sweeps the process-sharded engines
(:mod:`repro.parallel`) next to the serial fast path, recording per-rung
speedup and parallel efficiency; the payload's ``host`` block (CPU count,
start method) keeps those numbers interpretable across machines.

The serving side has its own harness: :mod:`repro.perf.serve_bench` starts
an in-process :class:`~repro.serve.server.JoinServer` over a fitted model
and drives it with closed-loop HTTP clients across a concurrency ladder,
writing ``BENCH_serve.json`` (requests/sec, p50/p99, warm-vs-cold first
request) — run it with ``python -m repro.perf --benchmark serve``.
"""

from repro.perf.runner import BenchmarkRunner, host_metadata, validate_payload
from repro.perf.serve_bench import (
    ServeBenchConfig,
    run_serve_benchmark,
    validate_serve_payload,
)

__all__ = [
    "BenchmarkRunner",
    "ServeBenchConfig",
    "host_metadata",
    "run_serve_benchmark",
    "validate_payload",
    "validate_serve_payload",
]
