"""The size-ladder benchmark runner behind ``BENCH_*.json``.

The runner generates one synthetic table pair per ladder rung (same seed for
every engine, so all engines see identical inputs), times each pipeline stage
with :class:`~repro.utils.timing.StageTimer`-compatible wall clocks, and
writes a JSON report whose schema is stable enough to diff across PRs:

.. code-block:: text

    {
      "benchmark": "discovery",
      "config": {...generation and engine parameters...},
      "rungs": [
        {
          "rows": 10000,
          "engines": {
            "seed":   {"stages": {...}, "total_s": ..., "num_pairs": ...},
            "packed": {"stages": {...}, "total_s": ..., "num_pairs": ...}
          },
          "identical": true,        # packed results byte-identical to seed
          "speedup": 7.9            # seed total_s / packed total_s
        },
        ...
      ]
    }

``identical`` is computed from the actual candidate-pair lists and discovered
covers, not from counts — the harness doubles as a large-scale equivalence
test for the packed fast path.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import DiscoveryConfig
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import MatchingConfig, NGramRowMatcher, RowMatcher

#: The default synthetic size ladder (number of rows per rung).
DEFAULT_LADDER: tuple[int, ...] = (1000, 5000, 10000, 25000)

#: Engines the runner knows how to build.  "seed" is the preserved original
#: implementation (reference matcher + unbatched coverage); "packed" is the
#: packed-index matcher + trie-batched coverage.
ENGINES: tuple[str, ...] = ("seed", "packed")


class BenchmarkRunner:
    """Time the matching/discovery hot path on a synthetic size ladder.

    Parameters
    ----------
    ladder:
        Row counts to sweep, ascending.
    row_length:
        Fixed synthetic row length (the paper's Figure 4a uses 28).
    sample_size:
        Discovery generation sample (Section 5.3); keeps the number of
        candidate transformations roughly constant across rungs so the
        coverage stage scales with rows only.
    seed:
        Base RNG seed; rung *n* uses ``seed + n`` so inputs are reproducible
        and identical across engines.
    output_dir:
        Where :meth:`write` puts ``BENCH_<name>.json`` (default: cwd).
    """

    def __init__(
        self,
        *,
        ladder: Sequence[int] = DEFAULT_LADDER,
        row_length: int = 28,
        sample_size: int = 200,
        seed: int = 0,
        output_dir: str | Path | None = None,
    ) -> None:
        if not ladder:
            raise ValueError("ladder must contain at least one rung")
        if any(rung <= 0 for rung in ladder):
            raise ValueError(f"ladder rungs must be positive, got {list(ladder)}")
        self.ladder = tuple(ladder)
        self.row_length = row_length
        self.sample_size = sample_size
        self.seed = seed
        self.output_dir = Path(output_dir) if output_dir is not None else Path.cwd()

    # ------------------------------------------------------------------ #
    # Engines and inputs
    # ------------------------------------------------------------------ #
    def matcher_for(self, engine: str) -> RowMatcher:
        """The row matcher of *engine* ("seed" or "packed")."""
        config = MatchingConfig()
        if engine == "seed":
            return ReferenceRowMatcher(config)
        if engine == "packed":
            return NGramRowMatcher(config)
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")

    def discovery_for(self, engine: str) -> TransformationDiscovery:
        """The discovery engine of *engine* ("seed" or "packed")."""
        if engine == "seed":
            config = DiscoveryConfig(
                sample_size=self.sample_size, use_batched_coverage=False
            )
        elif engine == "packed":
            config = DiscoveryConfig(sample_size=self.sample_size)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        return TransformationDiscovery(config)

    def rung_values(
        self, num_rows: int, *, row_length: int | None = None
    ) -> tuple[list[str], list[str]]:
        """The (source, target) column values of one ladder rung."""
        length = self.row_length if row_length is None else row_length
        config = SyntheticConfig(
            num_rows=num_rows,
            min_length=length,
            max_length=length,
            seed=self.seed + num_rows,
        )
        pair, _ = generate_table_pair(config)
        return list(pair.source["value"]), list(pair.target["value"])

    # ------------------------------------------------------------------ #
    # Single rungs
    # ------------------------------------------------------------------ #
    def matching_rung(
        self,
        num_rows: int,
        engine: str,
        *,
        values: tuple[list[str], list[str]] | None = None,
    ) -> tuple[dict, list]:
        """Time row matching at one rung; returns (record, pairs)."""
        source_values, target_values = values or self.rung_values(num_rows)
        matcher = self.matcher_for(engine)
        started = time.perf_counter()
        pairs = matcher.match_values(source_values, target_values)
        elapsed = time.perf_counter() - started
        record = {
            "stages": {"row_matching": elapsed},
            "total_s": elapsed,
            "num_pairs": len(pairs),
        }
        return record, pairs

    def discovery_rung(
        self,
        num_rows: int,
        engine: str,
        *,
        row_length: int | None = None,
        values: tuple[list[str], list[str]] | None = None,
    ) -> tuple[dict, list, DiscoveryResult]:
        """Time row matching + discovery at one rung.

        Returns ``(record, pairs, discovery_result)`` so callers can compare
        results across engines.
        """
        source_values, target_values = values or self.rung_values(
            num_rows, row_length=row_length
        )
        matcher = self.matcher_for(engine)
        discovery = self.discovery_for(engine)

        started = time.perf_counter()
        pairs = matcher.match_values(source_values, target_values)
        matching_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = discovery.discover(pairs)
        discovery_seconds = time.perf_counter() - started

        stages = {"row_matching": matching_seconds}
        stages.update(result.stats.stage_seconds)
        record = {
            "stages": stages,
            "total_s": matching_seconds + discovery_seconds,
            "matching_s": matching_seconds,
            "discovery_s": discovery_seconds,
            "num_pairs": len(pairs),
            "num_transformations": result.stats.unique_transformations,
            "cover_size": len(result.cover),
            "top_coverage": result.top_coverage,
        }
        return record, pairs, result

    # ------------------------------------------------------------------ #
    # Ladder sweeps
    # ------------------------------------------------------------------ #
    def run_matching(
        self,
        *,
        engines: Sequence[str] = ENGINES,
        max_seed_rows: int = 10000,
    ) -> dict:
        """Sweep the ladder timing row matching only."""
        return self._run_ladder("matching", engines, max_seed_rows, discovery=False)

    def run_discovery(
        self,
        *,
        engines: Sequence[str] = ENGINES,
        max_seed_rows: int = 10000,
    ) -> dict:
        """Sweep the ladder timing row matching + discovery (the fig-4a path)."""
        return self._run_ladder("discovery", engines, max_seed_rows, discovery=True)

    def _run_ladder(
        self,
        benchmark: str,
        engines: Sequence[str],
        max_seed_rows: int,
        *,
        discovery: bool,
    ) -> dict:
        rungs = []
        for num_rows in self.ladder:
            values = self.rung_values(num_rows)
            engine_records: dict[str, dict] = {}
            outputs: dict[str, tuple] = {}
            for engine in engines:
                if engine == "seed" and max_seed_rows and num_rows > max_seed_rows:
                    # The seed engine is O(slow); cap how far up the ladder it
                    # climbs.  The packed engine still records the rung.
                    continue
                if discovery:
                    record, pairs, result = self.discovery_rung(
                        num_rows, engine, values=values
                    )
                    outputs[engine] = (pairs, result.cover)
                else:
                    record, pairs = self.matching_rung(num_rows, engine, values=values)
                    outputs[engine] = (pairs, None)
                engine_records[engine] = record
            rung: dict = {"rows": num_rows, "engines": engine_records}
            if "seed" in engine_records and "packed" in engine_records:
                seed_pairs, seed_cover = outputs["seed"]
                packed_pairs, packed_cover = outputs["packed"]
                rung["identical"] = (
                    seed_pairs == packed_pairs and seed_cover == packed_cover
                )
                packed_total = engine_records["packed"]["total_s"]
                if packed_total > 0:
                    rung["speedup"] = round(
                        engine_records["seed"]["total_s"] / packed_total, 2
                    )
            rungs.append(rung)
        return {
            "benchmark": benchmark,
            "harness": "repro.perf.BenchmarkRunner",
            "config": {
                "ladder": list(self.ladder),
                "row_length": self.row_length,
                "sample_size": self.sample_size,
                "seed": self.seed,
                "engines": list(engines),
                "max_seed_rows": max_seed_rows,
            },
            "rungs": rungs,
        }

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def write(self, name: str, payload: dict) -> Path:
        """Write *payload* to ``<output_dir>/BENCH_<name>.json`` and return the path."""
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def validate_payload(payload: dict) -> list[str]:
    """Sanity-check a benchmark payload; returns a list of problems (empty = ok).

    Used by the ``--smoke`` CLI mode (and CI) to assert that stage timings
    were recorded and that the run produced non-empty outputs.
    """
    problems: list[str] = []
    rungs = payload.get("rungs") or []
    if not rungs:
        problems.append("no rungs recorded")
    for rung in rungs:
        rows = rung.get("rows")
        engines = rung.get("engines") or {}
        if not engines:
            problems.append(f"rung {rows}: no engines recorded")
        for engine, record in engines.items():
            label = f"rung {rows}/{engine}"
            stages = record.get("stages") or {}
            if not stages:
                problems.append(f"{label}: no stage timings recorded")
            if any(seconds < 0 for seconds in stages.values()):
                problems.append(f"{label}: negative stage timing")
            if record.get("total_s", 0) <= 0:
                problems.append(f"{label}: total_s missing or non-positive")
            if record.get("num_pairs", 0) <= 0:
                problems.append(f"{label}: no candidate pairs produced")
            if "num_transformations" in record and record["num_transformations"] <= 0:
                problems.append(f"{label}: no transformations generated")
        if rung.get("identical") is False:
            problems.append(f"rung {rows}: engines disagree on results")
    return problems
