"""The size-ladder benchmark runner behind ``BENCH_*.json``.

The runner generates one synthetic table pair per ladder rung (same seed for
every engine, so all engines see identical inputs), times each pipeline stage
with :class:`~repro.utils.timing.StageTimer`-compatible wall clocks, and
writes a JSON report whose schema is stable enough to diff across PRs:

.. code-block:: text

    {
      "benchmark": "discovery",
      "host": {"cpu_count": ..., "start_method": ...},   # parallel context
      "config": {...generation and engine parameters, "workers": [1, 2, ...]},
      "rungs": [
        {
          "rows": 10000,
          "engines": {
            "seed":      {"stages": {...}, "total_s": ..., "num_pairs": ...},
            "packed":    {"stages": {...}, "total_s": ..., "num_pairs": ...},
            "packed-w4": {..., "num_workers": 4}          # workers axis
          },
          "identical": true,        # every engine/worker variant agrees
          "speedup": 7.9,           # seed total_s / packed total_s
          "parallel": {
            "packed-w4": {"workers": 4, "speedup_vs_serial": ..., "efficiency": ...}
          }
        },
        ...
      ]
    }

``identical`` is computed from the actual candidate-pair lists and discovered
covers, not from counts — the harness doubles as a large-scale equivalence
test for the packed fast path and its process-sharded variants.  The
``host`` block (CPU count, start method) is what makes multi-worker numbers
interpretable across machines: an ``efficiency`` of 0.5 at 4 workers is poor
scaling on 8 cores and the physical ceiling on 2.
"""

from __future__ import annotations

import json
import os
import platform
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import DiscoveryConfig
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.join.joiner import TransformationJoiner
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import MatchingConfig, NGramRowMatcher, RowMatcher
from repro.matching.setsim import SetSimRowMatcher
from repro.parallel.executor import default_start_method, tuned_num_workers

#: The default synthetic size ladder (number of rows per rung).
DEFAULT_LADDER: tuple[int, ...] = (1000, 5000, 10000, 25000)

#: Engines the full (matching + discovery) pipeline knows how to build.
#: "seed" is the preserved original implementation (reference matcher +
#: unbatched coverage); "packed" is the packed-index matcher + trie-batched
#: coverage.
ENGINES: tuple[str, ...] = ("seed", "packed")

#: Engines of the matching-only benchmark: the pipeline engines plus
#: "setsim", the prefix-filtered set-similarity matcher.  setsim is a
#: *different candidate-generation regime* (token-set similarity, not
#: representative n-grams), so it is compared head-to-head on wall time and
#: candidate pruning, never on match-set identity with the n-gram family.
MATCHING_ENGINES: tuple[str, ...] = ("seed", "packed", "setsim")

#: Configuration of the setsim engine on the synthetic ladder.  The
#: synthetic rows are separator-free alphanumeric strings, so the engine
#: tokenizes into character q-grams; the threshold is calibrated so true
#: (source, transformed-target) pairs — which share the transformation's
#: substring placeholders — clear it while unrelated random rows do not.
SETSIM_BENCH_SIMILARITY = "jaccard"
SETSIM_BENCH_THRESHOLD = 0.2
SETSIM_BENCH_TOKENIZER = "qgram"
SETSIM_BENCH_QGRAM = 4

#: The default workers axis: serial only.  The checked-in BENCH files are
#: regenerated with ``--workers 1,2,4,8``.
DEFAULT_WORKERS: tuple[int, ...] = (1,)


def _engine_family(label: str) -> str:
    """The candidate-generation family of an engine/worker label.

    "seed", "packed" and every "packed-w<n>" variant are the n-gram family
    (they must produce identical pairs); "setsim" and its worker variants
    are the set-similarity family.  Identity is only ever asserted *within*
    a family — across families the engines legitimately differ.
    """
    return "setsim" if label.startswith("setsim") else "ngram"


def host_metadata() -> dict:
    """Host facts that make multi-worker numbers comparable across machines.

    Parallel speedup is meaningless without knowing how many cores the run
    had, and a timing is meaningless without knowing which kernel tier
    produced it — every BENCH payload embeds this block.  ``kernels`` is the
    resolved tier of this process (see :mod:`repro.kernels`); ``numpy`` is
    the importable numpy version or ``None``, recorded regardless of tier so
    a forced-fallback run is distinguishable from a numpy-less host.
    """
    from repro import kernels  # noqa: PLC0415

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "start_method": default_start_method(),
        "kernels": kernels.active_tier(),
        "numpy": kernels.numpy_version(),
    }


class BenchmarkRunner:
    """Time the matching/discovery hot path on a synthetic size ladder.

    Parameters
    ----------
    ladder:
        Row counts to sweep, ascending.
    row_length:
        Fixed synthetic row length (the paper's Figure 4a uses 28).
    sample_size:
        Discovery generation sample (Section 5.3); keeps the number of
        candidate transformations roughly constant across rungs so the
        coverage stage scales with rows only.
    seed:
        Base RNG seed; rung *n* uses ``seed + n`` so inputs are reproducible
        and identical across engines.
    workers:
        Worker counts swept for the packed engine (the seed engine is
        inherently serial).  ``1`` records the serial fast path under the
        plain ``packed`` key and is always included — it is the baseline of
        every speedup/efficiency figure; higher counts are recorded as
        ``packed-w<n>`` with speedup-vs-serial and parallel efficiency per
        rung.
    output_dir:
        Where :meth:`write` puts ``BENCH_<name>.json`` (default: cwd).
    """

    def __init__(
        self,
        *,
        ladder: Sequence[int] = DEFAULT_LADDER,
        row_length: int = 28,
        sample_size: int = 200,
        seed: int = 0,
        workers: Sequence[int] = DEFAULT_WORKERS,
        output_dir: str | Path | None = None,
    ) -> None:
        if not ladder:
            raise ValueError("ladder must contain at least one rung")
        if any(rung <= 0 for rung in ladder):
            raise ValueError(f"ladder rungs must be positive, got {list(ladder)}")
        if not workers:
            raise ValueError("workers must contain at least one worker count")
        if any(count <= 0 for count in workers):
            raise ValueError(
                f"worker counts must be positive, got {list(workers)}"
            )
        self.ladder = tuple(ladder)
        self.row_length = row_length
        self.sample_size = sample_size
        self.seed = seed
        # The serial packed run is the baseline every speedup/efficiency
        # figure is computed against, so it always joins the axis.
        self.workers = tuple(dict.fromkeys((1, *workers)))
        self.output_dir = Path(output_dir) if output_dir is not None else Path.cwd()

    # ------------------------------------------------------------------ #
    # Engines and inputs
    # ------------------------------------------------------------------ #
    def matcher_for(self, engine: str, num_workers: int = 1) -> RowMatcher:
        """The row matcher of *engine* ("seed", "packed" or "setsim")."""
        if engine == "seed":
            if num_workers != 1:
                raise ValueError("the seed engine is serial; num_workers must be 1")
            return ReferenceRowMatcher(MatchingConfig())
        if engine == "packed":
            return NGramRowMatcher(MatchingConfig(num_workers=num_workers))
        if engine == "setsim":
            return SetSimRowMatcher(
                MatchingConfig(
                    engine="setsim",
                    setsim_similarity=SETSIM_BENCH_SIMILARITY,
                    setsim_threshold=SETSIM_BENCH_THRESHOLD,
                    setsim_tokenizer=SETSIM_BENCH_TOKENIZER,
                    setsim_qgram=SETSIM_BENCH_QGRAM,
                    num_workers=num_workers,
                )
            )
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {MATCHING_ENGINES}"
        )

    def discovery_for(self, engine: str, num_workers: int = 1) -> TransformationDiscovery:
        """The discovery engine of *engine* ("seed" or "packed")."""
        if engine == "seed":
            if num_workers != 1:
                raise ValueError("the seed engine is serial; num_workers must be 1")
            config = DiscoveryConfig(
                sample_size=self.sample_size,
                use_batched_coverage=False,
                num_workers=1,
            )
        elif engine == "packed":
            config = DiscoveryConfig(
                sample_size=self.sample_size, num_workers=num_workers
            )
        elif engine == "setsim":
            # setsim is a matching-only engine: it swaps the candidate
            # generator, not the discovery/coverage machinery, so it has no
            # place on the discovery ladder.
            raise ValueError(
                "the setsim engine benchmarks matching only; "
                "run it on the matching ladder"
            )
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        return TransformationDiscovery(config)

    def rung_values(
        self, num_rows: int, *, row_length: int | None = None
    ) -> tuple[list[str], list[str]]:
        """The (source, target) column values of one ladder rung."""
        length = self.row_length if row_length is None else row_length
        config = SyntheticConfig(
            num_rows=num_rows,
            min_length=length,
            max_length=length,
            seed=self.seed + num_rows,
        )
        pair, _ = generate_table_pair(config)
        return list(pair.source["value"]), list(pair.target["value"])

    # ------------------------------------------------------------------ #
    # Single rungs
    # ------------------------------------------------------------------ #
    def matching_rung(
        self,
        num_rows: int,
        engine: str,
        *,
        num_workers: int = 1,
        values: tuple[list[str], list[str]] | None = None,
    ) -> tuple[dict, list]:
        """Time row matching at one rung; returns (record, pairs).

        setsim records additionally carry the candidate-pruning statistics
        (``all_pairs``, ``candidates_post_filter``, ``pruning_ratio``) — the
        pruning ratio is the headline number of the engine comparison: it is
        the fraction of the brute-force pair space that survived the
        prefix/size/position filters and paid for exact verification.
        """
        source_values, target_values = values or self.rung_values(num_rows)
        matcher = self.matcher_for(engine, num_workers)
        extra: dict = {}
        if isinstance(matcher, SetSimRowMatcher):
            started = time.perf_counter()
            pairs, stats = matcher.match_values_with_stats(
                source_values, target_values
            )
            elapsed = time.perf_counter() - started
            extra = {
                "all_pairs": stats.all_pairs,
                "candidates_post_filter": stats.candidates,
                "pruning_ratio": round(stats.pruning_ratio, 6),
            }
        else:
            started = time.perf_counter()
            pairs = matcher.match_values(source_values, target_values)
            elapsed = time.perf_counter() - started
        record = {
            "stages": {"row_matching": elapsed},
            "total_s": elapsed,
            "num_pairs": len(pairs),
            "num_workers": num_workers,
            # What the small-input fast path actually ran with (matching
            # shards over source rows) — the honest denominator for any
            # parallel-efficiency reading of this record.
            "effective_workers": tuned_num_workers(
                num_workers, len(source_values)
            ),
            **extra,
        }
        return record, pairs

    def discovery_rung(
        self,
        num_rows: int,
        engine: str,
        *,
        num_workers: int = 1,
        row_length: int | None = None,
        values: tuple[list[str], list[str]] | None = None,
    ) -> tuple[dict, list, DiscoveryResult, list[tuple[int, int]]]:
        """Time row matching + discovery + the apply-only join at one rung.

        Returns ``(record, pairs, discovery_result, joined_pairs)`` so
        callers can compare results across engines.  The ``apply_only``
        stage joins the rung's own columns with the *already discovered*
        cover — no matching, no re-discovery — which is exactly the serving
        path of a persisted :class:`~repro.model.artifact.TransformationModel`;
        tracking it separately is what lets the BENCH files show apply
        throughput independently of training cost.  The seed engine applies
        with the reference one-at-a-time loop, the packed engine with the
        trie-compiled batch applier (sharded at the rung's worker count), so
        the rung's ``identical`` flag also certifies the apply engines agree.
        """
        source_values, target_values = values or self.rung_values(
            num_rows, row_length=row_length
        )
        matcher = self.matcher_for(engine, num_workers)
        discovery = self.discovery_for(engine, num_workers)

        started = time.perf_counter()
        pairs = matcher.match_values(source_values, target_values)
        matching_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = discovery.discover(pairs)
        discovery_seconds = time.perf_counter() - started

        joiner = TransformationJoiner(
            result.transformations,
            num_workers=num_workers,
            use_batched_apply=(engine == "packed"),
        )
        started = time.perf_counter()
        join_result = joiner.join_values(source_values, target_values)
        apply_seconds = time.perf_counter() - started

        stages = {"row_matching": matching_seconds}
        stages.update(result.stats.stage_seconds)
        stages["apply_only"] = apply_seconds
        record = {
            "stages": stages,
            "total_s": matching_seconds + discovery_seconds + apply_seconds,
            "matching_s": matching_seconds,
            "discovery_s": discovery_seconds,
            "apply_s": apply_seconds,
            "num_pairs": len(pairs),
            "num_transformations": result.stats.unique_transformations,
            "cover_size": len(result.cover),
            "top_coverage": result.top_coverage,
            "joined_pairs": join_result.num_pairs,
            "num_workers": num_workers,
            # Degradation flag: true when a discovery time budget cut the
            # coverage walk short.  Benchmark runs must never be budgeted
            # (the timings would not be comparable), so validate_payload
            # rejects any record carrying it.
            "budget_exhausted": result.stats.budget_exhausted,
            # What the small-input fast path actually ran with (coverage
            # shards over candidate pairs) — the honest denominator for
            # any parallel-efficiency reading of this record.
            "effective_workers": tuned_num_workers(num_workers, len(pairs)),
        }
        return record, pairs, result, join_result.pairs

    # ------------------------------------------------------------------ #
    # Ladder sweeps
    # ------------------------------------------------------------------ #
    def run_matching(
        self,
        *,
        engines: Sequence[str] = MATCHING_ENGINES,
        max_seed_rows: int = 10000,
    ) -> dict:
        """Sweep the ladder timing row matching only.

        By default the sweep runs both n-gram engines *and* the setsim
        engine head-to-head on identical inputs; setsim rungs record the
        candidate-pruning ratio next to the wall time.
        """
        return self._run_ladder("matching", engines, max_seed_rows, discovery=False)

    def run_discovery(
        self,
        *,
        engines: Sequence[str] = ENGINES,
        max_seed_rows: int = 10000,
    ) -> dict:
        """Sweep the ladder timing row matching + discovery (the fig-4a path)."""
        return self._run_ladder("discovery", engines, max_seed_rows, discovery=True)

    def _run_ladder(
        self,
        benchmark: str,
        engines: Sequence[str],
        max_seed_rows: int,
        *,
        discovery: bool,
    ) -> dict:
        rungs = []
        for num_rows in self.ladder:
            values = self.rung_values(num_rows)
            engine_records: dict[str, dict] = {}
            outputs: dict[str, tuple] = {}
            for engine in engines:
                if engine == "seed" and max_seed_rows and num_rows > max_seed_rows:
                    # The seed engine is O(slow); cap how far up the ladder it
                    # climbs.  The packed engine still records the rung.
                    continue
                # The workers axis applies to the sharded engines (packed,
                # setsim); the seed engine is the serial executable spec.
                worker_counts = (1,) if engine == "seed" else self.workers
                for num_workers in worker_counts:
                    label = engine if num_workers == 1 else f"{engine}-w{num_workers}"
                    if discovery:
                        record, pairs, result, joined = self.discovery_rung(
                            num_rows, engine, num_workers=num_workers, values=values
                        )
                        outputs[label] = (pairs, result.cover, joined)
                    else:
                        record, pairs = self.matching_rung(
                            num_rows, engine, num_workers=num_workers, values=values
                        )
                        outputs[label] = (pairs, None)
                    engine_records[label] = record
            rung: dict = {"rows": num_rows, "engines": engine_records}
            if len(outputs) > 1:
                # One flag for the whole rung: within each candidate-
                # generation family (seed/packed n-grams vs setsim), every
                # engine/worker variant must produce the same pairs and the
                # same cover.  The families are *different regimes* — they
                # legitimately match different pair sets — so they are
                # compared on wall time and pruning, never on identity.
                rung["identical"] = all(
                    self._family_identical(outputs, family)
                    for family in {_engine_family(label) for label in outputs}
                )
            self._speedup_summary(rung, engine_records)
            parallel = self._parallel_summary(engine_records)
            if parallel:
                rung["parallel"] = parallel
            rungs.append(rung)
        config: dict = {
            "ladder": list(self.ladder),
            "row_length": self.row_length,
            "sample_size": self.sample_size,
            "seed": self.seed,
            "engines": list(engines),
            "workers": list(self.workers),
            "max_seed_rows": max_seed_rows,
        }
        if "setsim" in engines:
            config["setsim"] = {
                "similarity": SETSIM_BENCH_SIMILARITY,
                "threshold": SETSIM_BENCH_THRESHOLD,
                "tokenizer": SETSIM_BENCH_TOKENIZER,
                "qgram": SETSIM_BENCH_QGRAM,
            }
        return {
            "benchmark": benchmark,
            "harness": "repro.perf.BenchmarkRunner",
            "host": host_metadata(),
            "config": config,
            "rungs": rungs,
        }

    @staticmethod
    def _family_identical(outputs: dict[str, tuple], family: str) -> bool:
        """Whether every engine/worker variant of *family* agrees exactly."""
        labels = [label for label in outputs if _engine_family(label) == family]
        # The family's serial engine is the baseline when present (its label
        # carries no -w suffix); any member works otherwise.
        baseline_label = min(labels, key=len)
        baseline = outputs[baseline_label]
        return all(outputs[label] == baseline for label in labels)

    @staticmethod
    def _speedup_summary(rung: dict, engine_records: dict[str, dict]) -> None:
        """Attach ``speedup`` (with an explicit baseline label) and the
        per-stage speedup breakdown to *rung*.

        On rungs where the seed engine ran, ``speedup`` is the classic
        seed-vs-packed total ratio.  On seed-capped rungs (the top of the
        ladder) the packed serial run becomes the baseline and the fastest
        worker variant the comparison engine, so the field is never silently
        dropped; ``speedup_baseline``/``speedup_engine`` always say which
        pair was compared.  ``stage_speedup`` carries the same ratio per
        pipeline stage, which is what makes a coverage-stage optimisation
        (``applying_transformations``) visible in the BENCH JSON rather
        than buried in the total.
        """
        # The cross-regime headline: serial setsim vs serial packed wall
        # time on identical inputs (they solve the same candidate-generation
        # problem under different filters, so the ratio is the honest
        # engine-vs-engine comparison even though their match sets differ).
        packed = engine_records.get("packed")
        setsim = engine_records.get("setsim")
        if packed and setsim and setsim["total_s"] > 0:
            rung["setsim_vs_packed"] = round(
                packed["total_s"] / setsim["total_s"], 2
            )
        if "seed" in engine_records and "packed" in engine_records:
            baseline_label, engine_label = "seed", "packed"
        elif "packed" in engine_records:
            variants = [
                label
                for label, record in engine_records.items()
                if label.startswith("packed-w") and record["total_s"] > 0
            ]
            if not variants:
                return
            baseline_label = "packed"
            engine_label = min(
                variants, key=lambda label: engine_records[label]["total_s"]
            )
        else:
            return
        baseline = engine_records[baseline_label]
        engine = engine_records[engine_label]
        if engine["total_s"] <= 0:
            return
        rung["speedup"] = round(baseline["total_s"] / engine["total_s"], 2)
        rung["speedup_baseline"] = baseline_label
        rung["speedup_engine"] = engine_label
        stage_speedup = {
            stage: round(seconds / engine["stages"][stage], 2)
            for stage, seconds in baseline.get("stages", {}).items()
            if engine.get("stages", {}).get(stage, 0) > 0
        }
        if stage_speedup:
            rung["stage_speedup"] = stage_speedup

    @staticmethod
    def _parallel_summary(engine_records: dict[str, dict]) -> dict:
        """Speedup-vs-serial and parallel efficiency of every worker variant.

        Efficiency is ``speedup / effective_workers`` — 1.0 means perfect
        scaling over the workers that *actually ran*: the small-input fast
        path may resolve a ``packed-w8`` request to fewer workers (or to the
        serial inline path on single-core hosts), and dividing by the
        requested count would report that serial run as 8-worker
        inefficiency.  Both counts are recorded so the reduction is visible.
        Read efficiency against ``host.cpu_count``: with fewer cores than
        workers the ceiling is ``cpu_count / workers``, not 1.0.
        """
        summary = {}
        for engine in ("packed", "setsim"):
            serial = engine_records.get(engine)
            if serial is None or serial["total_s"] <= 0:
                continue
            for label, record in engine_records.items():
                num_workers = record.get("num_workers", 1)
                if num_workers <= 1 or not label.startswith(f"{engine}-w"):
                    continue
                if record["total_s"] <= 0:
                    continue
                effective = record.get("effective_workers", num_workers)
                speedup = serial["total_s"] / record["total_s"]
                summary[label] = {
                    "workers": num_workers,
                    "effective_workers": effective,
                    "speedup_vs_serial": round(speedup, 2),
                    "efficiency": round(speedup / max(effective, 1), 2),
                }
        return summary

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def write(self, name: str, payload: dict) -> Path:
        """Write *payload* to ``<output_dir>/BENCH_<name>.json`` and return the path."""
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def validate_payload(payload: dict) -> list[str]:
    """Sanity-check a benchmark payload; returns a list of problems (empty = ok).

    Used by the ``--smoke`` CLI mode (and CI) to assert that stage timings
    were recorded and that the run produced non-empty outputs.  Serving
    payloads (``"benchmark": "serve"``, written by
    :mod:`repro.perf.serve_bench`) have their own shape and checks and are
    dispatched to :func:`~repro.perf.serve_bench.validate_serve_payload`.
    """
    if payload.get("benchmark") == "serve":
        from repro.perf.serve_bench import validate_serve_payload

        return validate_serve_payload(payload)
    problems: list[str] = []
    rungs = payload.get("rungs") or []
    is_discovery = payload.get("benchmark") == "discovery"
    host = payload.get("host") or {}
    if host and "kernels" not in host:
        # Without the tier on record a payload cannot be compared to
        # anything — a numpy-tier number read against a python-tier baseline
        # (or vice versa) is the classic apples-to-oranges perf mistake.
        problems.append("host block does not record the kernel tier")
    if not rungs:
        problems.append("no rungs recorded")
    for rung in rungs:
        rows = rung.get("rows")
        engines = rung.get("engines") or {}
        if not engines:
            problems.append(f"rung {rows}: no engines recorded")
        for engine, record in engines.items():
            label = f"rung {rows}/{engine}"
            stages = record.get("stages") or {}
            if not stages:
                problems.append(f"{label}: no stage timings recorded")
            if any(seconds < 0 for seconds in stages.values()):
                problems.append(f"{label}: negative stage timing")
            if record.get("total_s", 0) <= 0:
                problems.append(f"{label}: total_s missing or non-positive")
            if record.get("num_pairs", 0) <= 0:
                problems.append(f"{label}: no candidate pairs produced")
            if "num_transformations" in record and record["num_transformations"] <= 0:
                problems.append(f"{label}: no transformations generated")
            if engine.startswith("setsim"):
                # setsim records must carry the pruning statistics — they
                # are the benchmark's headline — and the statistics must be
                # internally consistent (a candidate count outside
                # [matches, all_pairs] means a broken filter or counter).
                all_pairs = record.get("all_pairs", 0)
                candidates = record.get("candidates_post_filter")
                if all_pairs <= 0:
                    problems.append(f"{label}: no all_pairs count recorded")
                if candidates is None:
                    problems.append(f"{label}: no post-filter candidate count")
                elif not record.get("num_pairs", 0) <= candidates <= all_pairs:
                    problems.append(
                        f"{label}: candidate count {candidates} outside "
                        f"[matches, all_pairs]"
                    )
                ratio = record.get("pruning_ratio")
                if ratio is None or not 0.0 <= ratio <= 1.0:
                    problems.append(
                        f"{label}: pruning_ratio missing or outside [0, 1]"
                    )
            if is_discovery and stages and "apply_only" not in stages:
                # Discovery payloads must track apply throughput separately
                # from training — a missing stage means the apply-only path
                # silently fell out of the harness.
                problems.append(f"{label}: no apply_only stage recorded")
            if is_discovery and record.get("joined_pairs", 0) <= 0:
                problems.append(f"{label}: apply-only join produced no pairs")
            if record.get("budget_exhausted"):
                # A budget-truncated run timed a prefix of the work — its
                # numbers are not comparable to complete runs and must not
                # land in a BENCH file.
                problems.append(f"{label}: run was cut by a discovery time budget")
        if len(engines) > 1 and "identical" not in rung:
            problems.append(
                f"rung {rows}: multiple engines recorded but no identical flag"
            )
        if rung.get("identical") is False:
            problems.append(f"rung {rows}: engines disagree on results")
    return problems


def compare_to_baseline(
    payload: dict,
    baseline_payload: dict,
    *,
    engine: str = "packed",
    stage: str = "applying_transformations",
    factor: float = 2.0,
) -> list[str]:
    """Coarse hot-path regression guard against a checked-in BENCH payload.

    For every rung present in both payloads, fails when the *engine*'s
    *stage* timing is more than *factor* times the checked-in value.  The
    factor is deliberately loose — CI machines differ from the machine that
    produced the baseline and wall clocks are noisy — so only gross
    regressions (an accidentally disabled prefilter, a quadratic slip) trip
    it.  Rungs or stages missing from either payload are skipped: the guard
    protects timings that exist, it does not enforce payload shape
    (:func:`validate_payload` does that).
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    problems: list[str] = []
    current_tier = (payload.get("host") or {}).get("kernels")
    baseline_tier = (baseline_payload.get("host") or {}).get("kernels")
    if current_tier and baseline_tier and current_tier != baseline_tier:
        # Refuse mixed-tier comparisons outright: a python-tier run against
        # a numpy-tier baseline (or vice versa) measures the tier gap, not a
        # regression, and any factor threshold applied to it is noise.
        return [
            "kernel tiers differ between payload "
            f"({current_tier}) and baseline ({baseline_tier}); "
            "timings are not comparable"
        ]
    baseline_rungs = {
        rung.get("rows"): rung for rung in baseline_payload.get("rungs") or []
    }
    for rung in payload.get("rungs") or []:
        rows = rung.get("rows")
        baseline_rung = baseline_rungs.get(rows)
        if baseline_rung is None:
            continue
        current = (
            (rung.get("engines") or {}).get(engine, {}).get("stages", {}).get(stage)
        )
        reference = (
            (baseline_rung.get("engines") or {})
            .get(engine, {})
            .get("stages", {})
            .get(stage)
        )
        if not current or not reference:
            continue
        if current > factor * reference:
            problems.append(
                f"rung {rows}/{engine}: stage {stage} took {current:.2f}s, "
                f"more than {factor}x the checked-in {reference:.2f}s"
            )
    return problems
