"""CLI for the perf harness: ``python -m repro.perf``.

Examples
--------
Full before/after ladder with the multi-worker axis (writes
``BENCH_matching.json`` and ``BENCH_discovery.json`` to the repository
root)::

    PYTHONPATH=src python -m repro.perf --out . --workers 1,2,4,8

CI smoke (smallest rung, packed engine only, fails when stage timings are
missing or outputs are empty; ``--workers 1,2`` additionally smoke-tests the
process-sharded path and its identical-results flag)::

    PYTHONPATH=src python -m repro.perf --smoke --out /tmp/bench --workers 1,2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.runner import (
    DEFAULT_LADDER,
    DEFAULT_WORKERS,
    ENGINES,
    MATCHING_ENGINES,
    BenchmarkRunner,
    compare_to_baseline,
    validate_payload,
)
from repro.perf.serve_bench import (
    DEFAULT_CONCURRENCY,
    ServeBenchConfig,
    run_serve_benchmark,
)


def _parse_ladder(text: str) -> tuple[int, ...]:
    try:
        ladder = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad ladder {text!r}: {error}") from None
    if not ladder:
        raise argparse.ArgumentTypeError("ladder must contain at least one rung")
    if any(rung <= 0 for rung in ladder):
        raise argparse.ArgumentTypeError(
            f"ladder rungs must be positive, got {list(ladder)}"
        )
    return ladder


def _parse_workers(text: str) -> tuple[int, ...]:
    try:
        workers = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad workers {text!r}: {error}") from None
    if not workers:
        raise argparse.ArgumentTypeError("workers must contain at least one count")
    if any(count <= 0 for count in workers):
        raise argparse.ArgumentTypeError(
            f"worker counts must be positive, got {list(workers)}"
        )
    return workers


def _parse_engines(text: str) -> tuple[str, ...]:
    engines = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [engine for engine in engines if engine not in MATCHING_ENGINES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown engines {unknown}; valid engines: {list(MATCHING_ENGINES)}"
        )
    return engines


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Time the matching/discovery hot path on a synthetic size ladder.",
    )
    parser.add_argument(
        "--benchmark",
        choices=("matching", "discovery", "both", "serve"),
        default="both",
        help=(
            "which BENCH_*.json report(s) to produce (default: both; "
            "'serve' runs the HTTP serving load generator instead of the "
            "training ladder and writes BENCH_serve.json)"
        ),
    )
    parser.add_argument(
        "--ladder",
        type=_parse_ladder,
        default=DEFAULT_LADDER,
        help="comma-separated row counts (default: %(default)s)",
    )
    parser.add_argument(
        "--engines",
        type=_parse_engines,
        default=MATCHING_ENGINES,
        help=(
            "comma-separated engines out of seed,packed,setsim (default: "
            "all); setsim runs on the matching ladder only — the discovery "
            "ladder silently drops it (it swaps the candidate generator, "
            "not the discovery machinery)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=DEFAULT_WORKERS,
        help=(
            "comma-separated worker counts swept for the packed engine, "
            "e.g. 1,2,4,8 (default: %(default)s); results stay identical, "
            "per-rung speedup and parallel efficiency are recorded"
        ),
    )
    parser.add_argument(
        "--max-seed-rows",
        type=int,
        default=10000,
        help="largest rung the slow seed engine runs at (default: %(default)s)",
    )
    parser.add_argument(
        "--sample-size",
        type=int,
        default=200,
        help="discovery generation sample size (default: %(default)s)",
    )
    parser.add_argument(
        "--row-length",
        type=int,
        default=28,
        help="synthetic row length (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed (default: %(default)s)"
    )
    parser.add_argument(
        "--out",
        default=".",
        help="directory BENCH_*.json files are written to (default: cwd)",
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "python", "numpy"),
        default="auto",
        help=(
            "kernel tier the benchmark runs under (auto = numpy when "
            "importable); recorded in the payload's host block — "
            "mixed-tier baseline comparisons are rejected"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "fast sanity run: smallest ladder rung, packed engine only; "
            "exits non-zero when stage timings or outputs are missing"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "directory holding checked-in BENCH_*.json files; the packed "
            "applying_transformations stage is compared per rung and the "
            "run fails when it is more than --baseline-factor slower "
            "(coarse hot-path regression guard for CI)"
        ),
    )
    parser.add_argument(
        "--baseline-factor",
        type=float,
        default=2.0,
        help=(
            "allowed slow-down factor against the --baseline timings "
            "(default: %(default)s; loose on purpose, CI clocks are noisy)"
        ),
    )
    serve = parser.add_argument_group("serve benchmark (--benchmark serve)")
    serve.add_argument(
        "--serve-rows",
        type=int,
        default=2000,
        help="rows per request batch the serving model is fitted on "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--serve-concurrency",
        type=_parse_workers,
        default=DEFAULT_CONCURRENCY,
        help="comma-separated closed-loop client counts swept against the "
        "server (default: %(default)s)",
    )
    serve.add_argument(
        "--serve-duration",
        type=float,
        default=2.0,
        help="seconds each concurrency level is driven for (default: %(default)s)",
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=None,
        help="apply-stage worker processes inside the server (default: "
        "REPRO_NUM_WORKERS or serial)",
    )
    serve.add_argument(
        "--serve-no-micro-batch",
        action="store_true",
        help="disable coalescing of concurrent same-model requests",
    )
    return parser


def _run_serve(args: argparse.Namespace) -> tuple[dict, Path]:
    """Run the serving load generator and write ``BENCH_serve.json``."""
    concurrency = args.serve_concurrency
    duration = args.serve_duration
    rows = args.serve_rows
    if args.smoke:
        rows = min(rows, 800)
        duration = min(duration, 1.0)
        concurrency = (1, 4)
    payload = run_serve_benchmark(
        ServeBenchConfig(
            rows=rows,
            concurrency=tuple(concurrency),
            duration_s=duration,
            num_workers=args.serve_workers,
            micro_batch=not args.serve_no_micro_batch,
        )
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload, path


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernels != "auto":
        import os

        from repro import kernels

        os.environ["REPRO_KERNELS"] = args.kernels
        try:
            kernels.refresh_tier()
        except ImportError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.benchmark == "serve":
        payload, path = _run_serve(args)
        problems = [f"serve: {problem}" for problem in validate_payload(payload)]
        cold = payload["cold"]["first_request_s"]
        for level in payload["levels"]:
            latency = level.get("latency") or {}
            print(
                f"[serve] c={level['concurrency']}: {level['requests']} req "
                f"in {level['duration_s']:.2f}s, {level['rps']:.1f} req/s, "
                f"p50={latency.get('p50_s', 0) * 1000:.1f}ms "
                f"p99={latency.get('p99_s', 0) * 1000:.1f}ms, "
                f"errors={level['errors']}, "
                f"matches_offline={level['matches_offline']}"
            )
        warm = payload["warm_vs_cold"]
        print(
            f"[serve] cold first request {cold * 1000:.1f}ms vs warm p50 "
            f"{(warm['warm_p50_s'] or 0) * 1000:.1f}ms "
            f"(warm_below_cold={warm['warm_below_cold']})"
        )
        print(f"[serve] wrote {path}")
        if problems:
            for problem in problems:
                print(f"SMOKE FAILURE: {problem}", file=sys.stderr)
            return 1
        return 0
    ladder = args.ladder
    engines = args.engines
    if args.smoke:
        # Smoke both fast engines: a regression in either matcher (or a
        # sharded-identity break, with --workers > 1) must fail CI.
        ladder = (min(ladder),)
        engines = tuple(e for e in ("packed", "setsim") if e in engines) or (
            "packed",
        )

    runner = BenchmarkRunner(
        ladder=ladder,
        row_length=args.row_length,
        sample_size=args.sample_size,
        seed=args.seed,
        workers=args.workers,
        output_dir=args.out,
    )

    wanted = ("matching", "discovery") if args.benchmark == "both" else (args.benchmark,)
    problems: list[str] = []
    for benchmark in wanted:
        if benchmark == "matching":
            payload = runner.run_matching(
                engines=engines, max_seed_rows=args.max_seed_rows
            )
        else:
            discovery_engines = tuple(e for e in engines if e != "setsim")
            if not discovery_engines:
                print(
                    "[discovery] skipped: setsim is a matching-only engine",
                    file=sys.stderr,
                )
                continue
            payload = runner.run_discovery(
                engines=discovery_engines, max_seed_rows=args.max_seed_rows
            )
        path = runner.write(benchmark, payload)
        problems.extend(
            f"{benchmark}: {problem}" for problem in validate_payload(payload)
        )
        if args.baseline:
            baseline_path = Path(args.baseline) / f"BENCH_{benchmark}.json"
            if baseline_path.is_file():
                baseline_payload = json.loads(
                    baseline_path.read_text(encoding="utf-8")
                )
                if benchmark == "discovery":
                    comparisons = [("packed", "applying_transformations")]
                else:
                    # The matching guard covers both fast engines: a
                    # quadratic slip in either matcher must trip it.
                    comparisons = [
                        ("packed", "row_matching"),
                        ("setsim", "row_matching"),
                    ]
                for engine, stage in comparisons:
                    problems.extend(
                        f"{benchmark}: {problem}"
                        for problem in compare_to_baseline(
                            payload,
                            baseline_payload,
                            engine=engine,
                            stage=stage,
                            factor=args.baseline_factor,
                        )
                    )
            else:
                problems.append(
                    f"{benchmark}: baseline file {baseline_path} not found"
                )
        for rung in payload["rungs"]:
            summary = ", ".join(
                f"{engine}={record['total_s']:.2f}s"
                + (
                    f" (prune {record['pruning_ratio']:.4f})"
                    if "pruning_ratio" in record
                    else ""
                )
                for engine, record in rung["engines"].items()
            )
            speedup = ""
            if "speedup" in rung:
                speedup = (
                    f", speedup={rung['speedup']}x"
                    f" ({rung.get('speedup_engine', 'packed')}"
                    f" vs {rung.get('speedup_baseline', 'seed')})"
                )
            identical = (
                f", identical={rung['identical']}" if "identical" in rung else ""
            )
            parallel = ""
            if "parallel" in rung:
                parallel = ", " + ", ".join(
                    f"{label}={info['speedup_vs_serial']}x"
                    f" (eff {info['efficiency']})"
                    for label, info in rung["parallel"].items()
                )
            print(
                f"[{benchmark}] rows={rung['rows']}: "
                f"{summary}{speedup}{parallel}{identical}"
            )
        print(f"[{benchmark}] wrote {path}")

    if problems:
        for problem in problems:
            print(f"SMOKE FAILURE: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
