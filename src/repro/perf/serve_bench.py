"""The serving load generator behind ``BENCH_serve.json``.

Where :class:`~repro.perf.runner.BenchmarkRunner` measures *training* cost
(matching + discovery seconds per ladder rung), this harness measures
*serving* throughput: it fits one model on a synthetic table pair, persists
it into a registry directory, starts an in-process
:class:`~repro.serve.server.JoinServer`, and drives it with **closed-loop
HTTP clients** — each client thread posts a join request, waits for the
response, and immediately posts the next — sweeping a ladder of concurrency
levels and reporting requests/sec and p50/p99 latency per level.

Two correctness guarantees ride along with the numbers, so the payload is a
smoke test as much as a benchmark (``validate_payload`` enforces both):

* **responses match offline apply** — clients parse sampled responses and
  compare the joined pairs (content *and* order) against the offline
  ``model.joiner().join_values`` result; any mismatch counts as an error
  and errors must be zero;
* **warm beats cold** — the very first request pays the model load, trie
  compile and target-index build; every later request hits the registry
  caches.  The payload records both latencies and asserts warm p50 is
  strictly below the cold first request.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from pathlib import Path

from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.join.pipeline import JoinPipeline
from repro.perf.runner import host_metadata

#: Concurrency ladder swept by default.
DEFAULT_CONCURRENCY: tuple[int, ...] = (1, 2, 4, 8)

#: Every Nth response is fully parsed and compared against the offline
#: join; the first response of every client thread is always verified.
_VERIFY_EVERY = 16


@dataclass
class ServeBenchConfig:
    """Knobs of one serving benchmark run.

    ``rows`` sizes the table pair the model is fitted on and the target
    column every request joins against; ``batch_rows`` is the source batch
    each request posts.  The small-batch-against-big-target shape is the
    realistic serving workload ("join my incoming rows against the
    reference table") and is also what makes the warm/cold split
    measurable: the cold first request pays the model load, trie compile
    and the target index build over all ``rows`` values, while a warm
    request only transforms ``batch_rows`` source rows.
    """

    rows: int = 2000
    batch_rows: int = 256
    row_length: int = 28
    seed: int = 0
    concurrency: tuple[int, ...] = DEFAULT_CONCURRENCY
    duration_s: float = 2.0
    num_workers: int | None = None
    micro_batch: bool = True
    min_support: float = 0.05
    #: Per-request socket timeout of the closed-loop clients — a hung
    #: server surfaces as a counted error, not a wedged benchmark.
    client_timeout_s: float = 30.0


@dataclass
class _ClientTally:
    """One client thread's aggregated observations."""

    latencies: list[float] = field(default_factory=list)
    errors: int = 0
    verified: int = 0
    mismatches: int = 0
    shed: int = 0
    deadline_exceeded: int = 0


#: Fallback backoff after a 429 without a parsable Retry-After, seconds.
_SHED_BACKOFF_S = 0.05


def _client_loop(
    host: str,
    port: int,
    model_name: str,
    body: bytes,
    expected_pairs: list[list[int]],
    deadline: float,
    tally: _ClientTally,
    timeout_s: float = 30.0,
) -> None:
    """Closed loop: request, await, verify (sampled), repeat until deadline.

    Resilience-aware: a 429 (admission shed) is counted and retried after
    the server's ``Retry-After`` hint — expected behaviour under load, not
    an error; a 504 (expired deadline) counts as both.  The per-request
    socket timeout keeps a hung server from wedging the whole benchmark.
    """
    headers = {"Content-Type": "application/json"}
    connection = HTTPConnection(host, port, timeout=timeout_s)
    request_index = 0
    try:
        while time.perf_counter() < deadline:
            started = time.perf_counter()
            try:
                connection.request("POST", f"/join/{model_name}", body, headers)
                response = connection.getresponse()
                raw = response.read()
                elapsed = time.perf_counter() - started
                if response.status == 429:
                    tally.shed += 1
                    try:
                        backoff = float(response.getheader("Retry-After") or "")
                    except ValueError:
                        backoff = _SHED_BACKOFF_S
                    # Honour the hint, but never sleep past the level end.
                    time.sleep(
                        min(backoff, max(deadline - time.perf_counter(), 0.0))
                    )
                    continue
                if response.status == 504:
                    tally.deadline_exceeded += 1
                    tally.errors += 1
                    continue
                if response.status != 200:
                    tally.errors += 1
                    continue
            except OSError:
                tally.errors += 1
                connection.close()
                connection = HTTPConnection(host, port, timeout=timeout_s)
                continue
            tally.latencies.append(elapsed)
            if request_index % _VERIFY_EVERY == 0:
                payload = json.loads(raw)
                tally.verified += 1
                if payload.get("pairs") != expected_pairs:
                    tally.mismatches += 1
                    tally.errors += 1
            request_index += 1
    finally:
        connection.close()


def _quantile(ordered: list[float], q: float) -> float:
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def _latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "mean_s": sum(ordered) / len(ordered),
        "p50_s": _quantile(ordered, 0.50),
        "p99_s": _quantile(ordered, 0.99),
        "max_s": ordered[-1],
    }


def run_serve_benchmark(config: ServeBenchConfig | None = None) -> dict:
    """Fit, serve, and load-test one model; returns the BENCH payload.

    The server runs in-process (threads, ephemeral port), so the numbers
    include real HTTP parsing and JSON encode/decode but no network hop —
    the right shape for a single-host throughput trajectory.
    """
    # Imported here, not at module top: the serving subsystem is only
    # needed when the serve benchmark actually runs.
    from repro.serve.server import JoinServer

    config = config or ServeBenchConfig()
    pair, _ = generate_table_pair(
        SyntheticConfig(
            num_rows=config.rows,
            min_length=config.row_length,
            max_length=config.row_length,
            seed=config.seed,
        )
    )
    source_values = list(pair.source["value"])
    target_values = list(pair.target["value"])

    pipeline = JoinPipeline(min_support=config.min_support)
    fit_started = time.perf_counter()
    model = pipeline.fit(
        pair.source, pair.target, source_column="value", target_column="value"
    )
    fit_seconds = time.perf_counter() - fit_started

    # Every request joins one source batch against the full target column.
    source_batch = source_values[: config.batch_rows]

    # The offline ground truth every sampled response is compared against:
    # a fresh joiner, exactly what JoinPipeline.apply would run.
    offline = model.joiner().join_values(source_batch, target_values)
    expected_pairs = [list(joined_pair) for joined_pair in offline.pairs]

    body = json.dumps({"source": source_batch, "target": target_values}).encode(
        "utf-8"
    )

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        model_path = Path(tmp) / "bench.json"
        model.save(model_path)
        with JoinServer(
            tmp,
            port=0,
            num_workers=config.num_workers,
            micro_batch=config.micro_batch,
        ) as server:
            server.start_background()
            host, port = server.address
            headers = {"Content-Type": "application/json"}

            # ---- cold: the first request ever, pays every build ---- #
            connection = HTTPConnection(host, port, timeout=120)
            started = time.perf_counter()
            connection.request("POST", "/join/bench", body, headers)
            response = connection.getresponse()
            cold_payload = json.loads(response.read())
            cold_seconds = time.perf_counter() - started
            cold_ok = (
                response.status == 200
                and cold_payload.get("pairs") == expected_pairs
                and cold_payload.get("warm") is False
            )

            # ---- warm confirmation before the sweep ---- #
            started = time.perf_counter()
            connection.request("POST", "/join/bench", body, headers)
            response = connection.getresponse()
            warm_payload = json.loads(response.read())
            warm_probe_seconds = time.perf_counter() - started
            warm_ok = (
                response.status == 200
                and warm_payload.get("pairs") == expected_pairs
                and warm_payload.get("warm") is True
            )
            connection.close()

            # ---- the concurrency ladder ---- #
            levels = []
            for concurrency in config.concurrency:
                tallies = [_ClientTally() for _ in range(concurrency)]
                deadline = time.perf_counter() + config.duration_s
                level_started = time.perf_counter()
                threads = [
                    threading.Thread(
                        target=_client_loop,
                        args=(
                            host,
                            port,
                            "bench",
                            body,
                            expected_pairs,
                            deadline,
                            tally,
                            config.client_timeout_s,
                        ),
                        name=f"serve-bench-c{concurrency}-{index}",
                    )
                    for index, tally in enumerate(tallies)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                level_elapsed = time.perf_counter() - level_started
                latencies = [
                    latency for tally in tallies for latency in tally.latencies
                ]
                errors = sum(tally.errors for tally in tallies)
                verified = sum(tally.verified for tally in tallies)
                mismatches = sum(tally.mismatches for tally in tallies)
                shed = sum(tally.shed for tally in tallies)
                deadline_exceeded = sum(
                    tally.deadline_exceeded for tally in tallies
                )
                level: dict = {
                    "concurrency": concurrency,
                    "requests": len(latencies),
                    "errors": errors,
                    "shed": shed,
                    "deadline_exceeded": deadline_exceeded,
                    "duration_s": level_elapsed,
                    "rps": len(latencies) / level_elapsed if level_elapsed else 0.0,
                    "verified_responses": verified,
                    "matches_offline": verified > 0 and mismatches == 0,
                }
                if latencies:
                    level["latency"] = _latency_summary(latencies)
                levels.append(level)

            # The full /stats payload — engine/cache counters plus the
            # resilience layer's admission gauges and shed/deadline totals.
            stats_connection = HTTPConnection(host, port, timeout=30)
            try:
                stats_connection.request("GET", "/stats")
                server_stats = json.loads(stats_connection.getresponse().read())
            finally:
                stats_connection.close()

    # Warm latency is judged at concurrency 1 — higher levels measure
    # queueing, not the cache's build-skipping.
    warm_p50 = None
    for level in levels:
        if level["concurrency"] == 1 and "latency" in level:
            warm_p50 = level["latency"]["p50_s"]
            break
    if warm_p50 is None and levels and "latency" in levels[0]:
        warm_p50 = levels[0]["latency"]["p50_s"]

    return {
        "benchmark": "serve",
        "harness": "repro.perf.serve_bench",
        "host": host_metadata(),
        "config": {
            "rows": config.rows,
            "batch_rows": len(source_batch),
            "row_length": config.row_length,
            "seed": config.seed,
            "concurrency": list(config.concurrency),
            "duration_s": config.duration_s,
            "num_workers": config.num_workers,
            "micro_batch": config.micro_batch,
            "min_support": config.min_support,
            "client_timeout_s": config.client_timeout_s,
        },
        "model": {
            "name": "bench",
            "num_transformations": model.num_transformations,
            "num_candidate_pairs": model.num_candidate_pairs,
            "fit_s": fit_seconds,
            "offline_joined_pairs": offline.num_pairs,
        },
        "cold": {
            "first_request_s": cold_seconds,
            "response_ok": cold_ok,
            "warm_probe_s": warm_probe_seconds,
            "warm_probe_ok": warm_ok,
        },
        "levels": levels,
        "warm_vs_cold": {
            "cold_first_request_s": cold_seconds,
            "warm_p50_s": warm_p50,
            "warm_below_cold": warm_p50 is not None and warm_p50 < cold_seconds,
        },
        "server_stats": server_stats,
    }


def validate_serve_payload(payload: dict) -> list[str]:
    """Sanity-check a serving benchmark payload; empty list = ok.

    The serving analogue of the discovery payload checks: every level must
    have produced traffic with zero errors and offline-identical responses,
    and the warm path must have beaten the cold first request — a warm p50
    at or above cold latency means the caches failed to skip the builds.
    """
    problems: list[str] = []
    host = payload.get("host") or {}
    if host and "kernels" not in host:
        problems.append("host block does not record the kernel tier")
    cold = payload.get("cold") or {}
    if not cold.get("first_request_s"):
        problems.append("cold: no first-request latency recorded")
    if not cold.get("response_ok"):
        problems.append("cold: first response wrong, not cold, or non-200")
    if not cold.get("warm_probe_ok"):
        problems.append("cold: warm probe response wrong, not warm, or non-200")
    levels = payload.get("levels") or []
    if not levels:
        problems.append("no concurrency levels recorded")
    for level in levels:
        concurrency = level.get("concurrency")
        label = f"level c{concurrency}"
        if level.get("requests", 0) <= 0:
            problems.append(f"{label}: no requests completed")
        if level.get("errors", 0) != 0:
            problems.append(f"{label}: {level.get('errors')} request errors")
        for counter in ("shed", "deadline_exceeded"):
            if counter not in level:
                problems.append(
                    f"{label}: resilience counter {counter!r} missing"
                )
            elif level[counter] != 0:
                # The ladder runs far below the admission bounds and with
                # the generous default deadline; any shedding or expiry
                # here means the resilience layer misfired.
                problems.append(f"{label}: {level[counter]} {counter} requests")
        if level.get("rps", 0) <= 0:
            problems.append(f"{label}: requests/sec missing or non-positive")
        if not level.get("matches_offline"):
            problems.append(
                f"{label}: responses were not verified identical to offline apply"
            )
        latency = level.get("latency") or {}
        if latency:
            if latency.get("p50_s", 0) <= 0:
                problems.append(f"{label}: p50 latency missing or non-positive")
            if latency.get("p99_s", 0) < latency.get("p50_s", 0):
                problems.append(f"{label}: p99 below p50")
        elif level.get("requests", 0) > 0:
            problems.append(f"{label}: requests recorded but no latency summary")
    warm_cold = payload.get("warm_vs_cold") or {}
    if not warm_cold.get("warm_below_cold"):
        problems.append(
            "warm_vs_cold: warm p50 is not strictly below the cold first request"
        )
    return problems


__all__ = [
    "DEFAULT_CONCURRENCY",
    "ServeBenchConfig",
    "run_serve_benchmark",
    "validate_serve_payload",
]
