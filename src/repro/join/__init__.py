"""End-to-end transformation join (Section 4.2 / Section 6.5 of the paper).

:class:`~repro.join.joiner.TransformationJoiner` applies a discovered
transformation set (filtered by a minimum support) to the source column and
equi-joins the transformed values against the target column.
:class:`~repro.join.pipeline.JoinPipeline` wires the row matcher, the
discovery engine and the joiner into the complete system evaluated in
Table 3.
"""

from repro.join.joiner import JoinResult, TransformationJoiner
from repro.join.pipeline import JoinPipeline, PipelineResult

__all__ = [
    "JoinPipeline",
    "JoinResult",
    "PipelineResult",
    "TransformationJoiner",
]
