"""End-to-end transformation join (Section 4.2 / Section 6.5 of the paper).

:class:`~repro.join.joiner.TransformationJoiner` applies a discovered
transformation set (filtered by a minimum support) to the source column and
equi-joins the transformed values against the target column.
:class:`~repro.join.pipeline.JoinPipeline` wires the row matcher, the
discovery engine and the joiner into the complete system evaluated in
Table 3, split into :meth:`~repro.join.pipeline.JoinPipeline.fit` (learn a
serializable :class:`~repro.model.artifact.TransformationModel`) and
:meth:`~repro.join.pipeline.JoinPipeline.apply` (join any table pair with a
fitted model — no re-discovery), with ``run()`` as the one-shot composition.
"""

from repro.join.joiner import JoinResult, TransformationJoiner
from repro.join.pipeline import ApplyResult, JoinPipeline, PipelineResult

__all__ = [
    "ApplyResult",
    "JoinPipeline",
    "JoinResult",
    "PipelineResult",
    "TransformationJoiner",
]
