"""The complete end-to-end join pipeline (Section 4.2).

``JoinPipeline`` chains the three stages of the paper's system:

1. **Row matching** — an :class:`~repro.matching.row_matcher.NGramRowMatcher`
   (or a golden matcher) proposes candidate joinable row pairs,
2. **Transformation discovery** — the
   :class:`~repro.core.discovery.TransformationDiscovery` engine learns a
   covering set of transformations from those pairs,
3. **Transformation join** — the
   :class:`~repro.join.joiner.TransformationJoiner` applies the
   transformations (filtered by a minimum support) and equi-joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DiscoveryConfig
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.join.joiner import JoinResult, TransformationJoiner
from repro.matching.row_matcher import NGramRowMatcher, RowMatcher
from repro.table.table import Table


@dataclass
class PipelineResult:
    """Everything the end-to-end pipeline produced for one table pair."""

    candidate_pairs: int
    discovery: DiscoveryResult
    join: JoinResult
    joined_table: Table | None = None
    extra: dict = field(default_factory=dict)

    @property
    def joined_pairs(self) -> set[tuple[int, int]]:
        """The joined (source_row, target_row) pairs."""
        return self.join.as_set()


class JoinPipeline:
    """End-to-end system: match rows, learn transformations, join.

    Example
    -------
    >>> from repro.join import JoinPipeline
    >>> pipeline = JoinPipeline()
    >>> result = pipeline.run(source_table, target_table,
    ...                       source_column="Name", target_column="Name")
    >>> result.join.num_pairs
    """

    def __init__(
        self,
        *,
        matcher: RowMatcher | None = None,
        discovery_config: DiscoveryConfig | None = None,
        min_support: float = 0.05,
        materialize: bool = False,
    ) -> None:
        """Create a pipeline.

        Parameters
        ----------
        matcher:
            The row matcher; defaults to the n-gram matcher with the paper's
            settings.
        discovery_config:
            Configuration of the discovery engine.
        min_support:
            Minimum coverage fraction a transformation needs to be applied in
            the join (the paper uses 5 %, and 2 % for open data).
        materialize:
            When True the joined table is materialized in the result.
        """
        self._matcher = matcher or NGramRowMatcher()
        self._discovery = TransformationDiscovery(discovery_config)
        self._min_support = min_support
        self._materialize = materialize

    @property
    def discovery_engine(self) -> TransformationDiscovery:
        """The underlying discovery engine."""
        return self._discovery

    def run(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> PipelineResult:
        """Run the full pipeline on one table pair."""
        candidate_pairs = self._matcher.match(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        discovery = self._discovery.discover(candidate_pairs)

        joiner = TransformationJoiner(
            discovery.transformations,
            min_support=self._min_support,
            coverage_results=discovery.cover,
            num_candidate_pairs=discovery.num_candidate_pairs,
            case_insensitive=self._discovery.config.case_insensitive,
        )
        join_result = joiner.join(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        joined_table = None
        if self._materialize:
            joined_table = joiner.materialize(
                source,
                target,
                source_column=source_column,
                target_column=target_column,
            )
        return PipelineResult(
            candidate_pairs=len(candidate_pairs),
            discovery=discovery,
            join=join_result,
            joined_table=joined_table,
        )
