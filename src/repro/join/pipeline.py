"""The complete end-to-end join pipeline (Section 4.2), split fit/apply.

``JoinPipeline`` chains the three stages of the paper's system:

1. **Row matching** — a row matcher (the engine picked by
   :func:`~repro.matching.row_matcher.create_row_matcher`, or a golden
   matcher) proposes candidate joinable row pairs,
2. **Transformation discovery** — the
   :class:`~repro.core.discovery.TransformationDiscovery` engine learns a
   covering set of transformations from those pairs,
3. **Transformation join** — the
   :class:`~repro.join.joiner.TransformationJoiner` applies the
   transformations (filtered by a minimum support) and equi-joins.

Stages 1–2 are *training* (they look at the table pair once and produce a
reusable artifact), stage 3 is *serving* (it can run on any table pair the
transformations apply to).  The pipeline exposes that seam directly:

* :meth:`JoinPipeline.fit` runs matching + discovery and returns a
  serializable :class:`~repro.model.artifact.TransformationModel`;
* :meth:`JoinPipeline.apply` takes a model (fresh from :meth:`fit` or loaded
  from disk) and joins *any* source/target tables with it — no matching, no
  re-discovery, just the apply-only engine;
* :meth:`JoinPipeline.run` is the classic one-shot composition of the two,
  returning the same :class:`PipelineResult` it always has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DiscoveryConfig
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.join.joiner import JoinResult, TransformationJoiner
from repro.matching.row_matcher import RowMatcher, create_row_matcher
from repro.model.artifact import TransformationModel
from repro.table.table import Table


@dataclass
class PipelineResult:
    """Everything the end-to-end pipeline produced for one table pair."""

    candidate_pairs: int
    discovery: DiscoveryResult
    join: JoinResult
    joined_table: Table | None = None
    extra: dict = field(default_factory=dict)

    @property
    def joined_pairs(self) -> set[tuple[int, int]]:
        """The joined (source_row, target_row) pairs."""
        return self.join.as_set()


@dataclass
class ApplyResult:
    """What applying a fitted model to one table pair produced.

    Unlike :class:`PipelineResult` there is no discovery here — the model
    may have been fitted in another process entirely; ``model`` records
    which artifact produced the join, ``applied_transformations`` the
    transformations the joiner actually ran (the model's cover after
    support filtering and the constant drop) in application order.
    """

    model: TransformationModel
    join: JoinResult
    applied_transformations: list = field(default_factory=list)
    joined_table: Table | None = None

    @property
    def joined_pairs(self) -> set[tuple[int, int]]:
        """The joined (source_row, target_row) pairs."""
        return self.join.as_set()


class JoinPipeline:
    """End-to-end system: match rows, learn transformations, join.

    Example
    -------
    >>> from repro import JoinPipeline
    >>> pipeline = JoinPipeline()
    >>> model = pipeline.fit(source_table, target_table,
    ...                      source_column="Name", target_column="Name")
    >>> model.save("model.json")
    >>> outcome = pipeline.apply(model, other_source, other_target,
    ...                          source_column="Name", target_column="Name")
    >>> outcome.join.num_pairs

    or, one-shot::

    >>> result = pipeline.run(source_table, target_table,
    ...                       source_column="Name", target_column="Name")
    """

    def __init__(
        self,
        *,
        matcher: RowMatcher | None = None,
        discovery_config: DiscoveryConfig | None = None,
        min_support: float = 0.05,
        materialize: bool = False,
        num_workers: int | None = None,
        task_timeout_s: float = 0.0,
        shard_retries: int = 2,
        serial_fallback: bool = True,
    ) -> None:
        """Create a pipeline.

        Parameters
        ----------
        matcher:
            The row matcher; defaults to the engine selected by
            ``REPRO_MATCHER`` (the n-gram matcher with the paper's settings
            unless overridden).
        discovery_config:
            Configuration of the discovery engine.
        min_support:
            Minimum coverage fraction a transformation needs to be applied in
            the join (the paper uses 5 %, and 2 % for open data).  Recorded
            in the fitted model, so a loaded model applies the same
            threshold.
        materialize:
            When True the joined table is materialized in the result.
        num_workers:
            Worker processes for the apply stage (1 = serial, 0 = all
            cores; ``None`` honours ``REPRO_NUM_WORKERS``).  Matching and
            discovery carry their own knobs
            (``MatchingConfig.num_workers`` / ``DiscoveryConfig.num_workers``);
            all three resolve through
            :func:`~repro.parallel.executor.tuned_num_workers`.
        task_timeout_s / shard_retries / serial_fallback:
            Fault tolerance of the sharded apply stage (wall-clock bound per
            sharded map with 0 = unbounded, pool retries per failed shard,
            serial inline recomputation of unproducible shards); see
            :class:`~repro.parallel.executor.ShardedExecutor`.  Matching and
            discovery carry the equivalent knobs on their own configs.
        """
        self._matcher = matcher or create_row_matcher()
        self._discovery = TransformationDiscovery(discovery_config)
        self._min_support = min_support
        self._materialize = materialize
        self._num_workers = num_workers
        if task_timeout_s < 0:
            raise ValueError(
                f"task_timeout_s must be >= 0, got {task_timeout_s}"
            )
        if shard_retries < 0:
            raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
        self._task_timeout_s = task_timeout_s
        self._shard_retries = shard_retries
        self._serial_fallback = serial_fallback

    @property
    def discovery_engine(self) -> TransformationDiscovery:
        """The underlying discovery engine."""
        return self._discovery

    # ------------------------------------------------------------------ #
    # fit: matching + discovery -> model
    # ------------------------------------------------------------------ #
    def fit(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> TransformationModel:
        """Learn a :class:`TransformationModel` from one table pair.

        Runs row matching and transformation discovery; the returned model
        carries the covering set, its coverage statistics, the discovery
        configuration and this pipeline's ``min_support`` — everything
        :meth:`apply` (or a later process that only calls
        ``TransformationModel.load``) needs.  The live
        :class:`DiscoveryResult` stays attached as ``model.discovery``.
        """
        candidate_pairs = self._matcher.match(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        discovery = self._discovery.discover(candidate_pairs)
        return TransformationModel.from_discovery(
            discovery,
            config=self._discovery.config,
            min_support=self._min_support,
        )

    # ------------------------------------------------------------------ #
    # apply: model + any table pair -> joined pairs (no re-discovery)
    # ------------------------------------------------------------------ #
    def apply(
        self,
        model: TransformationModel,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> ApplyResult:
        """Join a (possibly unseen) table pair with a fitted model.

        No matching and no discovery run here: the model's transformations
        are compiled into the batched apply engine, filtered by the model's
        recorded support threshold, and equi-joined against the target
        column — the pure serving path.
        """
        joiner = model.joiner(
            num_workers=self._num_workers,
            task_timeout_s=self._task_timeout_s,
            shard_retries=self._shard_retries,
            serial_fallback=self._serial_fallback,
        )
        join_result = joiner.join(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        joined_table = None
        if self._materialize:
            # Materialize from the pairs already computed — the apply stage
            # must not run twice.
            joined_table = joiner.materialize_from(join_result, source, target)
        return ApplyResult(
            model=model,
            join=join_result,
            applied_transformations=joiner.transformations,
            joined_table=joined_table,
        )

    # ------------------------------------------------------------------ #
    # run: the one-shot composition
    # ------------------------------------------------------------------ #
    def run(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> PipelineResult:
        """Run the full pipeline on one table pair (fit, then apply)."""
        model = self.fit(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        applied = self.apply(
            model,
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        discovery = model.discovery
        assert discovery is not None  # fit always attaches the live result
        return PipelineResult(
            candidate_pairs=model.num_candidate_pairs,
            discovery=discovery,
            join=applied.join,
            joined_table=applied.joined_table,
        )
