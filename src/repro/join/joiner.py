"""Applying a transformation set to equi-join two columns.

The experiments of Section 6.5 apply every transformation whose support (the
fraction of candidate pairs it covers) reaches a threshold to the source
column; a source row joins a target row whenever any applied transformation
maps the source cell to exactly the target cell.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.coverage import CoverageResult
from repro.core.transformation import Transformation
from repro.matching.index import ValueIndex
from repro.table.table import Table


@dataclass
class JoinResult:
    """Row pairs produced by a transformation join.

    ``pairs`` holds (source_row, target_row) index pairs;
    ``matched_by`` records which transformation produced each pair (the first
    transformation that matched, in the order they were applied).
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    matched_by: dict[tuple[int, int], Transformation] = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of joined row pairs."""
        return len(self.pairs)

    def as_set(self) -> set[tuple[int, int]]:
        """The joined pairs as a set (for metric computation)."""
        return set(self.pairs)


class TransformationJoiner:
    """Join two columns using a set of discovered transformations."""

    def __init__(
        self,
        transformations: Sequence[Transformation],
        *,
        min_support: float = 0.0,
        coverage_results: Sequence[CoverageResult] | None = None,
        num_candidate_pairs: int | None = None,
        case_insensitive: bool = False,
    ) -> None:
        """Create a joiner.

        Parameters
        ----------
        transformations:
            The transformations to apply, in priority order.
        min_support:
            Minimum coverage fraction a transformation must have had during
            discovery to be applied.  Requires *coverage_results* and
            *num_candidate_pairs*; ignored when 0.
        coverage_results / num_candidate_pairs:
            The discovery-time coverage of each transformation and the number
            of candidate pairs it was computed over, used to evaluate the
            support threshold.  ``num_candidate_pairs`` must be the real pair
            count from discovery
            (:attr:`~repro.core.discovery.DiscoveryResult.num_candidate_pairs`);
            it cannot be inferred from the covered rows — trailing uncovered
            rows would silently loosen the threshold.
        case_insensitive:
            Lower-case source and target values before applying the
            transformations and comparing.  Use together with
            ``DiscoveryConfig(case_insensitive=True)`` so the transformations
            see the same normalization they were learned on.
        """
        if min_support < 0.0 or min_support > 1.0:
            raise ValueError(f"min_support must be in [0, 1], got {min_support}")
        if min_support > 0.0 and coverage_results is None:
            raise ValueError(
                "min_support filtering requires the discovery coverage_results"
            )
        # Constant (literal-only) transformations map *every* source row to the
        # same value; applying one in a join would link every source row to any
        # target row carrying that value.  They can legitimately appear in a
        # covering set (they mop up noise rows during discovery) but are never
        # useful as join rules, so they are dropped here.
        applicable = [t for t in transformations if not t.is_constant]
        self._transformations = self._filter_by_support(
            applicable,
            min_support,
            coverage_results,
            num_candidate_pairs,
        )
        self._case_insensitive = case_insensitive

    @staticmethod
    def _filter_by_support(
        transformations: list[Transformation],
        min_support: float,
        coverage_results: Sequence[CoverageResult] | None,
        num_candidate_pairs: int | None,
    ) -> list[Transformation]:
        # coverage_fraction is a bitmask popcount on the discovery-time
        # CoverageResults, so support filtering never materializes the
        # per-transformation row sets, however large discovery's input was.
        if min_support <= 0.0 or not coverage_results:
            return transformations
        if not num_candidate_pairs:
            # Guessing the pair count (e.g. as max covered row + 1) undercounts
            # whenever trailing rows are uncovered, which silently loosens the
            # support threshold — refuse instead.
            raise ValueError(
                "min_support filtering requires num_candidate_pairs (the real "
                "candidate-pair count from discovery, e.g. "
                "DiscoveryResult.num_candidate_pairs)"
            )
        supported = {
            result.transformation
            for result in coverage_results
            if result.coverage_fraction(num_candidate_pairs) >= min_support
        }
        kept = [t for t in transformations if t in supported]
        # Never filter everything away: fall back to the full set so the join
        # still produces output (matching the paper's behaviour of always
        # reporting a join).
        return kept or transformations

    @property
    def transformations(self) -> list[Transformation]:
        """The transformations that passed the support filter."""
        return list(self._transformations)

    # ------------------------------------------------------------------ #
    # Joining
    # ------------------------------------------------------------------ #
    def join_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> JoinResult:
        """Join two plain value lists; row ids are list positions."""
        if self._case_insensitive:
            source_values = [value.lower() for value in source_values]
            target_values = [value.lower() for value in target_values]
        # The equi-join target map is the packed exact-value index: one build
        # pass, sorted array('i') postings probed without copying.
        target_index = ValueIndex.build(target_values)

        result = JoinResult()
        seen: set[tuple[int, int]] = set()
        for transformation in self._transformations:
            for source_row, source_value in enumerate(source_values):
                transformed = transformation.apply(source_value)
                if transformed is None:
                    continue
                for target_row in target_index.rows_for(transformed):
                    key = (source_row, target_row)
                    if key in seen:
                        continue
                    seen.add(key)
                    result.pairs.append(key)
                    result.matched_by[key] = transformation
        return result

    def join(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> JoinResult:
        """Join two tables on the given columns."""
        return self.join_values(
            list(source[source_column]), list(target[target_column])
        )

    def materialize(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> Table:
        """Return the joined table (all columns of both inputs, suffixed)."""
        join_result = self.join(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        columns: dict[str, list[str]] = {}
        for name in source.column_names:
            columns[f"{name}_source"] = []
        for name in target.column_names:
            columns[f"{name}_target"] = []
        columns["__left_row__"] = []
        columns["__right_row__"] = []
        for source_row, target_row in join_result.pairs:
            for name in source.column_names:
                columns[f"{name}_source"].append(source[name][source_row])
            for name in target.column_names:
                columns[f"{name}_target"].append(target[name][target_row])
            columns["__left_row__"].append(str(source_row))
            columns["__right_row__"].append(str(target_row))
        return Table(columns, name=f"{source.name}_tjoin_{target.name}")
