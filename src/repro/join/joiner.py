"""Applying a transformation set to equi-join two columns.

The experiments of Section 6.5 apply every transformation whose support (the
fraction of candidate pairs it covers) reaches a threshold to the source
column; a source row joins a target row whenever any applied transformation
maps the source cell to exactly the target cell.

The application itself is the batched apply engine of
:mod:`repro.model.apply`: the transformation set is compiled once into the
packed unit-prefix trie (shared unit prefixes evaluated once per row, one
``str.split`` per (delimiter, row)), walked serially or row-sharded across a
process pool (``num_workers``), and the transformed values are equi-joined
through the packed :class:`~repro.matching.index.ValueIndex`.  The
one-transformation-at-a-time loop survives as
:meth:`TransformationJoiner.join_values_reference` — the executable spec the
equivalence tests compare the batched path against.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field
from time import monotonic

from repro.core.coverage import CoverageResult
from repro.core.transformation import Transformation
from repro.matching.index import ValueIndex
from repro.model.apply import TransformationApplier
from repro.parallel.errors import DeadlineExceededError
from repro.parallel.executor import env_default_workers
from repro.table.table import Table


def target_values_key(values: Sequence[str]) -> bytes:
    """A collision-resistant identity digest of a target value list.

    Length-prefixed so value boundaries cannot alias (``["ab","c"]`` and
    ``["a","bc"]`` digest differently).  This is the cache key for prebuilt
    target :class:`ValueIndex` objects — on the joiner's most-recent-target
    cache and in the serving registry's bounded index cache — so it must
    never collide for differing inputs in practice; a 128-bit blake2b digest
    over the exact bytes gives that without keeping the values alive.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(len(values).to_bytes(8, "little"))
    for value in values:
        raw = value.encode("utf-8")
        digest.update(len(raw).to_bytes(8, "little"))
        digest.update(raw)
    return digest.digest()


@dataclass
class JoinResult:
    """Row pairs produced by a transformation join.

    ``pairs`` holds (source_row, target_row) index pairs;
    ``matched_by`` records which transformation produced each pair (the first
    transformation that matched, in the order they were applied).
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    matched_by: dict[tuple[int, int], Transformation] = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of joined row pairs."""
        return len(self.pairs)

    def as_set(self) -> set[tuple[int, int]]:
        """The joined pairs as a set (for metric computation)."""
        return set(self.pairs)


class TransformationJoiner:
    """Join two columns using a set of discovered transformations."""

    def __init__(
        self,
        transformations: Sequence[Transformation],
        *,
        min_support: float = 0.0,
        coverage_results: Sequence[CoverageResult] | None = None,
        coverage_counts: Sequence[int] | None = None,
        num_candidate_pairs: int | None = None,
        case_insensitive: bool = False,
        num_workers: int | None = None,
        min_rows_per_worker: int | None = None,
        use_batched_apply: bool = True,
        task_timeout_s: float = 0.0,
        shard_retries: int = 2,
        serial_fallback: bool = True,
    ) -> None:
        """Create a joiner.

        Parameters
        ----------
        transformations:
            The transformations to apply, in priority order.
        min_support:
            Minimum coverage fraction a transformation must have had during
            discovery to be applied.  Requires *num_candidate_pairs* plus
            either *coverage_results* or *coverage_counts*; ignored when 0.
        coverage_results / num_candidate_pairs:
            The discovery-time coverage of each transformation and the number
            of candidate pairs it was computed over, used to evaluate the
            support threshold.  ``num_candidate_pairs`` must be the real pair
            count from discovery
            (:attr:`~repro.core.discovery.DiscoveryResult.num_candidate_pairs`);
            it cannot be inferred from the covered rows — trailing uncovered
            rows would silently loosen the threshold.
        coverage_counts:
            Alternative to *coverage_results* for callers that only have the
            covered-pair *counts* (a loaded
            :class:`~repro.model.artifact.TransformationModel` stores counts,
            not row sets).  Aligned positionally with *transformations*; the
            support fraction of ``transformations[i]`` is
            ``coverage_counts[i] / num_candidate_pairs``.
        case_insensitive:
            Lower-case source and target values before applying the
            transformations and comparing.  Use together with
            ``DiscoveryConfig(case_insensitive=True)`` so the transformations
            see the same normalization they were learned on.
        num_workers:
            Worker processes for the apply stage (1 = serial, 0 = all
            cores; ``None`` — the default — honours ``REPRO_NUM_WORKERS``).
            The resolution goes through
            :func:`~repro.parallel.executor.tuned_num_workers`, so small
            inputs run serially regardless; joined pairs are identical at
            any worker count.
        min_rows_per_worker:
            Small-input threshold of the apply fast path (``None`` reads
            ``REPRO_MIN_ROWS_PER_WORKER``; 0 disables the tuning).
        use_batched_apply:
            When True (default) the transformations are compiled into the
            packed unit-prefix trie and applied in batch; disable to run the
            reference one-at-a-time loop (the ablation/equivalence path).
        task_timeout_s / shard_retries / serial_fallback:
            Fault tolerance of the sharded apply stage: wall-clock bound per
            sharded map (0 = unbounded), pool retries per failed shard, and
            whether unproducible shards are recomputed serially inline
            (True, the default) instead of raising a typed
            :class:`~repro.parallel.errors.ShardError`; see
            :class:`~repro.parallel.executor.ShardedExecutor`.
        """
        if min_support < 0.0 or min_support > 1.0:
            raise ValueError(f"min_support must be in [0, 1], got {min_support}")
        if min_support > 0.0 and coverage_results is None and coverage_counts is None:
            raise ValueError(
                "min_support filtering requires the discovery coverage_results "
                "(or their coverage_counts)"
            )
        if coverage_counts is not None and len(coverage_counts) != len(
            transformations
        ):
            raise ValueError(
                f"coverage_counts must align with transformations: "
                f"{len(coverage_counts)} counts for {len(transformations)} "
                "transformations"
            )
        supported = self._supported_transformations(
            transformations,
            min_support,
            coverage_results,
            coverage_counts,
            num_candidate_pairs,
        )
        # Constant (literal-only) transformations map *every* source row to the
        # same value; applying one in a join would link every source row to any
        # target row carrying that value.  They can legitimately appear in a
        # covering set (they mop up noise rows during discovery) but are never
        # useful as join rules, so they are dropped here.
        applicable = [t for t in transformations if not t.is_constant]
        kept = (
            applicable
            if supported is None
            else [t for t in applicable if t in supported]
        )
        # Never filter everything away: fall back to the full set so the join
        # still produces output (matching the paper's behaviour of always
        # reporting a join).
        self._transformations = kept or applicable
        self._case_insensitive = case_insensitive
        self._num_workers = (
            env_default_workers() if num_workers is None else num_workers
        )
        if self._num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self._num_workers}"
            )
        self._min_rows_per_worker = min_rows_per_worker
        self._use_batched_apply = use_batched_apply
        if task_timeout_s < 0:
            raise ValueError(
                f"task_timeout_s must be >= 0, got {task_timeout_s}"
            )
        if shard_retries < 0:
            raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
        self._task_timeout_s = task_timeout_s
        self._shard_retries = shard_retries
        self._serial_fallback = serial_fallback
        self._applier: TransformationApplier | None = None
        # Most-recent target index, keyed by the identity digest of the raw
        # target values: the apply-many scenario usually joins many source
        # batches against one target column, and rebuilding the ValueIndex
        # per call was the known cold-path waste.  The lock also guards the
        # lazy applier build — joiners are shared across server threads.
        self._target_index_cache: tuple[bytes, ValueIndex] | None = None
        self._lock = threading.Lock()

    @staticmethod
    def _supported_transformations(
        transformations: Sequence[Transformation],
        min_support: float,
        coverage_results: Sequence[CoverageResult] | None,
        coverage_counts: Sequence[int] | None,
        num_candidate_pairs: int | None,
    ) -> set[Transformation] | None:
        """The transformations passing the support threshold (None = no filter).

        Support is ``coverage / num_candidate_pairs`` on the discovery-time
        counts — for :class:`CoverageResult` inputs the coverages come from
        one batched popcount over the covered-row bitmasks
        (:func:`repro.kernels.bitset.popcounts`), so filtering never
        materializes per-transformation row sets, however large discovery's
        input was.
        """
        if min_support <= 0.0 or (not coverage_results and not coverage_counts):
            return None
        if not num_candidate_pairs:
            # Guessing the pair count (e.g. as max covered row + 1) undercounts
            # whenever trailing rows are uncovered, which silently loosens the
            # support threshold — refuse instead.
            raise ValueError(
                "min_support filtering requires num_candidate_pairs (the real "
                "candidate-pair count from discovery, e.g. "
                "DiscoveryResult.num_candidate_pairs)"
            )
        if coverage_results is not None:
            from repro.kernels.bitset import popcounts  # noqa: PLC0415

            counts = popcounts(
                [result.covered_mask for result in coverage_results]
            )
            return {
                result.transformation
                for result, count in zip(coverage_results, counts)
                if count / num_candidate_pairs >= min_support
            }
        assert coverage_counts is not None
        return {
            transformation
            for transformation, count in zip(transformations, coverage_counts)
            if count / num_candidate_pairs >= min_support
        }

    @property
    def transformations(self) -> list[Transformation]:
        """The transformations that passed the support filter."""
        return list(self._transformations)

    @property
    def num_workers(self) -> int:
        """The apply-stage worker knob (1 = serial, 0 = all cores)."""
        return self._num_workers

    @property
    def case_insensitive(self) -> bool:
        """Whether values are lower-cased before applying and comparing."""
        return self._case_insensitive

    def build_target_index(self, target_values: Sequence[str]) -> ValueIndex:
        """Build the packed equi-join index for *target_values*.

        Applies this joiner's normalization (lower-casing when the joiner is
        case-insensitive), so the returned index is exactly what
        :meth:`join_values` would have built internally — the way to prebuild
        an index for the ``target_index`` parameter (e.g. a serving cache
        that keeps indexes warm across requests).
        """
        if self._case_insensitive:
            target_values = [value.lower() for value in target_values]
        return ValueIndex.build(target_values)

    # ------------------------------------------------------------------ #
    # Joining
    # ------------------------------------------------------------------ #
    def join_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
        *,
        target_index: ValueIndex | None = None,
        deadline: float | None = None,
    ) -> JoinResult:
        """Join two plain value lists; row ids are list positions.

        ``deadline`` (a ``time.monotonic()`` timestamp) bounds the apply
        stage cooperatively: the remaining budget clamps the sharded
        executor's map timeout and is checked at block boundaries inside
        the walkers, so an expired deadline raises
        :class:`~repro.parallel.errors.DeadlineExceededError` (possibly as
        the cause of a :class:`~repro.parallel.errors.ShardError`) instead
        of returning a partial result — responses are complete or typed
        errors, never a prefix.

        The batched path compiles the transformation set once (the compiled
        trie is cached on the joiner, so repeated calls — the apply-many
        scenario — pay the build exactly once), transforms every source row
        through it (sharded over rows when ``num_workers`` resolves above 1
        — see :func:`~repro.parallel.executor.tuned_num_workers`), and
        probes the packed target :class:`ValueIndex` in the same
        transformation-major order as the reference loop, so pairs, order
        and first-match attribution are identical to
        :meth:`join_values_reference`.

        The target index is likewise built at most once per target column:
        pass a prebuilt *target_index* (see :meth:`build_target_index` — the
        caller owns normalization consistency then), or rely on the joiner's
        most-recent-target cache, which recognizes a repeated *target_values*
        list by content digest and reuses the previous index instead of
        rebuilding it on every call.
        """
        task_timeout = self._task_timeout_s or None
        if deadline is not None:
            remaining = deadline - monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "join deadline expired before the apply stage started"
                )
            # The sharded map must not outlive the request: the configured
            # per-map timeout still applies, but never beyond the budget.
            task_timeout = (
                remaining if task_timeout is None else min(task_timeout, remaining)
            )
        if not self._use_batched_apply:
            return self.join_values_reference(source_values, target_values)
        key: bytes | None = None
        if target_index is None:
            # Identity digest of the *raw* values: normalization happens
            # after the lookup, so a cached index (built over normalized
            # values) keyed by the raw digest is exactly the index this call
            # would build.
            key = target_values_key(target_values)
            with self._lock:
                cached = self._target_index_cache
            if cached is not None and cached[0] == key:
                target_index = cached[1]
        if self._case_insensitive:
            source_values = [value.lower() for value in source_values]
        else:
            source_values = list(source_values)
        if target_index is None:
            # The equi-join target map is the packed exact-value index: one
            # build pass, sorted array('i') postings probed without copying.
            target_index = self.build_target_index(target_values)
            assert key is not None
            with self._lock:
                self._target_index_cache = (key, target_index)
        with self._lock:
            applier = self._applier
            if applier is None:
                applier = self._applier = TransformationApplier(
                    self._transformations
                )
        outputs = applier.transform_rows(
            source_values,
            num_workers=self._num_workers,
            min_rows_per_worker=self._min_rows_per_worker,
            task_timeout=task_timeout,
            shard_retries=self._shard_retries,
            serial_fallback=self._serial_fallback,
            deadline=deadline,
        )

        result = JoinResult()
        seen: set[tuple[int, int]] = set()
        for index, transformation in enumerate(self._transformations):
            for source_row, transformed in outputs.get(index, ()):
                for target_row in target_index.rows_for(transformed):
                    pair = (source_row, target_row)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    result.pairs.append(pair)
                    result.matched_by[pair] = transformation
        return result

    def join_values_reference(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> JoinResult:
        """The one-transformation-at-a-time join loop (executable spec).

        Applies each transformation to every source value in turn — no
        shared-prefix reuse, no sharding.  Kept verbatim from the pre-model
        joiner so the equivalence tests can assert the batched path
        reproduces it pair for pair.
        """
        if self._case_insensitive:
            source_values = [value.lower() for value in source_values]
            target_values = [value.lower() for value in target_values]
        target_index = ValueIndex.build(target_values)

        result = JoinResult()
        seen: set[tuple[int, int]] = set()
        for transformation in self._transformations:
            for source_row, source_value in enumerate(source_values):
                transformed = transformation.apply(source_value)
                if transformed is None:
                    continue
                for target_row in target_index.rows_for(transformed):
                    key = (source_row, target_row)
                    if key in seen:
                        continue
                    seen.add(key)
                    result.pairs.append(key)
                    result.matched_by[key] = transformation
        return result

    def join(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> JoinResult:
        """Join two tables on the given columns."""
        return self.join_values(
            list(source[source_column]), list(target[target_column])
        )

    def materialize(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> Table:
        """Return the joined table (all columns of both inputs, suffixed)."""
        join_result = self.join(
            source,
            target,
            source_column=source_column,
            target_column=target_column,
        )
        return self.materialize_from(join_result, source, target)

    def materialize_from(
        self,
        join_result: JoinResult,
        source: Table,
        target: Table,
    ) -> Table:
        """Materialize an already-computed :class:`JoinResult` as a table.

        Callers that need both the pairs and the table (the pipeline's
        ``materialize`` flag) compute the join once and materialize from it,
        instead of paying the apply stage twice.
        """
        columns: dict[str, list[str]] = {}
        for name in source.column_names:
            columns[f"{name}_source"] = []
        for name in target.column_names:
            columns[f"{name}_target"] = []
        columns["__left_row__"] = []
        columns["__right_row__"] = []
        for source_row, target_row in join_result.pairs:
            for name in source.column_names:
                columns[f"{name}_source"].append(source[name][source_row])
            for name in target.column_names:
                columns[f"{name}_target"].append(target[name][target_row])
            columns["__left_row__"].append(str(source_row))
            columns["__right_row__"].append(str(target_row))
        return Table(columns, name=f"{source.name}_tjoin_{target.name}")
