"""Table schemas.

Schemas are deliberately simple: every column is a named, ordered collection
of strings.  The transformation-discovery algorithm is purely syntactic, so a
single string type is sufficient; numeric data is represented by its textual
form exactly as it would appear in a CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnSchema:
    """Schema of one column: a name and an optional human-readable role.

    The *role* is free text used by the dataset generators (e.g. ``"join"``,
    ``"payload"``) and never interpreted by the engine.
    """

    name: str
    role: str = "payload"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must not be empty")


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of column schemas with unique names."""

    columns: tuple[ColumnSchema, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [col.name for col in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in schema: {names}")

    @classmethod
    def from_names(cls, names: list[str] | tuple[str, ...]) -> "TableSchema":
        """Build a schema where every column has the default role."""
        return cls(tuple(ColumnSchema(name) for name in names))

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in order."""
        return tuple(col.name for col in self.columns)

    def index_of(self, name: str) -> int:
        """Return the position of column *name*, raising ``KeyError`` if absent."""
        for index, col in enumerate(self.columns):
            if col.name == name:
                return index
        raise KeyError(f"no column named {name!r}; available: {list(self.names)}")

    def __contains__(self, name: object) -> bool:
        return any(col.name == name for col in self.columns)

    def __len__(self) -> int:
        return len(self.columns)
