"""In-memory, column-oriented string tables.

:class:`Table` is the unit of data every other subsystem consumes: dataset
generators produce tables, the row matcher pairs up rows from two tables, the
discovery engine learns transformations between two columns, and the join
operator materializes the transformed equi-join.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.table.schema import ColumnSchema, TableSchema


@dataclass(frozen=True)
class Row:
    """A single table row: an index plus the cell values keyed by column name."""

    index: int
    values: Mapping[str, str]

    def __getitem__(self, column: str) -> str:
        return self.values[column]

    def as_tuple(self, columns: Sequence[str]) -> tuple[str, ...]:
        """Project the row onto *columns* preserving their order."""
        return tuple(self.values[c] for c in columns)


class Column:
    """A named, ordered, immutable sequence of string cells."""

    __slots__ = ("_name", "_values")

    def __init__(self, name: str, values: Iterable[str]) -> None:
        if not name:
            raise ValueError("column name must not be empty")
        self._name = name
        self._values = tuple(str(v) for v in values)

    @property
    def name(self) -> str:
        """The column name."""
        return self._name

    @property
    def values(self) -> tuple[str, ...]:
        """All cell values in row order."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> str:
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self._name == other._name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._name, self._values))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:3])
        suffix = ", ..." if len(self._values) > 3 else ""
        return f"Column({self._name!r}, [{preview}{suffix}], n={len(self._values)})"

    def average_length(self) -> float:
        """Average number of characters per cell (0.0 for an empty column)."""
        if not self._values:
            return 0.0
        return sum(len(v) for v in self._values) / len(self._values)

    def unique(self) -> set[str]:
        """The set of distinct cell values."""
        return set(self._values)


class Table:
    """A column-oriented table of strings.

    Tables are immutable: every operation returns a new table.  Columns are
    stored as tuples of strings; the number of rows is the common length of
    all columns.
    """

    def __init__(
        self,
        columns: Mapping[str, Iterable[str]] | Sequence[Column],
        *,
        name: str = "table",
    ) -> None:
        if isinstance(columns, Mapping):
            built = [Column(col_name, values) for col_name, values in columns.items()]
        else:
            built = list(columns)
        if not built:
            raise ValueError("a table must have at least one column")
        lengths = {len(col) for col in built}
        if len(lengths) > 1:
            detail = {col.name: len(col) for col in built}
            raise ValueError(f"all columns must have the same length, got {detail}")
        names = [col.name for col in built]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {col.name: col for col in built}
        self._schema = TableSchema(tuple(ColumnSchema(col.name) for col in built))
        self._name = name
        self._num_rows = len(built[0])

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The table name (used only for reporting)."""
        return self._name

    @property
    def schema(self) -> TableSchema:
        """The table schema."""
        return self._schema

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names, in order."""
        return self._schema.names

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def column(self, name: str) -> Column:
        """Return the column *name*, raising ``KeyError`` if it does not exist."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column named {name!r}; available: {list(self.column_names)}"
            ) from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self._num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.column_names == other.column_names
            and all(self[c] == other[c] for c in self.column_names)
        )

    def __repr__(self) -> str:
        return (
            f"Table({self._name!r}, columns={list(self.column_names)}, "
            f"rows={self._num_rows})"
        )

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def row(self, index: int) -> Row:
        """Return row *index* as a :class:`Row`."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range [0, {self._num_rows})")
        return Row(index, {name: col[index] for name, col in self._columns.items()})

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows in order."""
        for index in range(self._num_rows):
            yield self.row(index)

    def to_records(self) -> list[dict[str, str]]:
        """Return the table as a list of plain dicts (one per row)."""
        return [dict(row.values) for row in self.rows()]

    # ------------------------------------------------------------------ #
    # Construction helpers and derived tables
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, str]],
        *,
        name: str = "table",
        column_order: Sequence[str] | None = None,
    ) -> "Table":
        """Build a table from row dictionaries.

        All records must have identical keys.  *column_order* fixes the column
        order; by default the order of keys in the first record is used.
        """
        if not records:
            raise ValueError("cannot build a table from an empty record list")
        keys = list(column_order) if column_order is not None else list(records[0])
        columns: dict[str, list[str]] = {key: [] for key in keys}
        for position, record in enumerate(records):
            if set(record) != set(keys):
                raise ValueError(
                    f"record {position} keys {sorted(record)} do not match "
                    f"expected columns {sorted(keys)}"
                )
            for key in keys:
                columns[key].append(str(record[key]))
        return cls(columns, name=name)

    def with_name(self, name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(list(self._columns.values()), name=name)

    def with_column(self, name: str, values: Iterable[str]) -> "Table":
        """Return a new table with an extra (or replaced) column."""
        values = tuple(str(v) for v in values)
        if len(values) != self._num_rows:
            raise ValueError(
                f"new column {name!r} has {len(values)} values, "
                f"table has {self._num_rows} rows"
            )
        columns = [c for c in self._columns.values() if c.name != name]
        columns.append(Column(name, values))
        return Table(columns, name=self._name)

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table containing the rows at *indices* (in that order)."""
        for index in indices:
            if not 0 <= index < self._num_rows:
                raise IndexError(
                    f"row index {index} out of range [0, {self._num_rows})"
                )
        columns = [
            Column(col.name, [col[i] for i in indices])
            for col in self._columns.values()
        ]
        return Table(columns, name=self._name)

    def head(self, count: int) -> "Table":
        """Return the first *count* rows (fewer if the table is smaller)."""
        count = max(0, min(count, self._num_rows))
        return self.take(list(range(count)))

    def sample(self, count: int, *, seed: int = 0) -> "Table":
        """Return a deterministic pseudo-random sample of *count* rows.

        Sampling without replacement using ``random.Random(seed)``; if *count*
        exceeds the number of rows, the whole table is returned (shuffled).
        """
        import random

        rng = random.Random(seed)
        indices = list(range(self._num_rows))
        rng.shuffle(indices)
        return self.take(indices[: min(count, self._num_rows)])
