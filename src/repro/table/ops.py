"""Relational operators over :class:`~repro.table.table.Table`.

Only the operators the reproduction needs are implemented: selection,
projection, renaming, and (hash) equi-join.  The transformation join used by
the end-to-end experiments lives in :mod:`repro.join` and is built on
:func:`equi_join`.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence

from repro.table.table import Column, Row, Table


def project(table: Table, columns: Sequence[str], *, name: str | None = None) -> Table:
    """Return a new table with only *columns*, in the given order."""
    missing = [c for c in columns if c not in table]
    if missing:
        raise KeyError(f"columns {missing} not in table {table.name!r}")
    return Table(
        [Column(c, table[c].values) for c in columns],
        name=name or table.name,
    )


def rename(table: Table, mapping: dict[str, str], *, name: str | None = None) -> Table:
    """Return a new table with columns renamed according to *mapping*."""
    columns = []
    for column_name in table.column_names:
        new_name = mapping.get(column_name, column_name)
        columns.append(Column(new_name, table[column_name].values))
    return Table(columns, name=name or table.name)


def select(table: Table, predicate: Callable[[Row], bool]) -> Table:
    """Return the rows of *table* for which *predicate* returns True."""
    indices = [row.index for row in table.rows() if predicate(row)]
    if not indices:
        # Preserve the schema even when no row matches.
        return Table(
            [Column(c, []) for c in table.column_names],
            name=table.name,
        )
    return table.take(indices)


def hash_join(
    left: Table,
    right: Table,
    *,
    left_on: str,
    right_on: str,
    suffixes: tuple[str, str] = ("_left", "_right"),
) -> Table:
    """Hash equi-join of *left* and *right* on the given columns.

    The result contains every pair of rows whose join cells compare equal as
    strings.  Column-name collisions are resolved with *suffixes*.  The result
    also carries two bookkeeping columns, ``__left_row__`` and
    ``__right_row__``, holding the original row indices, which the evaluation
    code uses to compare against ground-truth row pairs.
    """
    if left_on not in left:
        raise KeyError(f"column {left_on!r} not in left table {left.name!r}")
    if right_on not in right:
        raise KeyError(f"column {right_on!r} not in right table {right.name!r}")

    index: dict[str, list[int]] = defaultdict(list)
    for row_id, value in enumerate(right[right_on]):
        index[value].append(row_id)

    left_names = list(left.column_names)
    right_names = list(right.column_names)
    collisions = set(left_names) & set(right_names)

    def left_out(name: str) -> str:
        return name + suffixes[0] if name in collisions else name

    def right_out(name: str) -> str:
        return name + suffixes[1] if name in collisions else name

    out_columns: dict[str, list[str]] = {left_out(n): [] for n in left_names}
    out_columns.update({right_out(n): [] for n in right_names})
    out_columns["__left_row__"] = []
    out_columns["__right_row__"] = []

    for left_id, key in enumerate(left[left_on]):
        for right_id in index.get(key, ()):
            for name in left_names:
                out_columns[left_out(name)].append(left[name][left_id])
            for name in right_names:
                out_columns[right_out(name)].append(right[name][right_id])
            out_columns["__left_row__"].append(str(left_id))
            out_columns["__right_row__"].append(str(right_id))

    return Table(out_columns, name=f"{left.name}_join_{right.name}")


def equi_join(
    left: Table,
    right: Table,
    *,
    left_on: str,
    right_on: str,
) -> list[tuple[int, int]]:
    """Return the (left_row, right_row) index pairs whose join cells are equal.

    This is the row-pair level view of :func:`hash_join`, used when only the
    matching pairs (not the materialized table) are needed.
    """
    index: dict[str, list[int]] = defaultdict(list)
    for row_id, value in enumerate(right[right_on]):
        index[value].append(row_id)
    pairs: list[tuple[int, int]] = []
    for left_id, key in enumerate(left[left_on]):
        for right_id in index.get(key, ()):
            pairs.append((left_id, right_id))
    return pairs
