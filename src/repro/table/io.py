"""CSV import/export for tables.

The benchmark datasets are materialized as CSV files so experiments can be
re-run without regenerating data, and so users can drop in their own table
pairs.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.table.table import Column, Table


def read_csv(path: str | Path, *, name: str | None = None) -> Table:
    """Read a CSV file (with a header row) into a :class:`Table`.

    All cells are read as strings.  Raises ``ValueError`` for an empty file or
    a file whose rows have inconsistent arity.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        columns: dict[str, list[str]] = {column: [] for column in header}
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} cells, "
                    f"got {len(row)}"
                )
            for column, cell in zip(header, row):
                columns[column].append(cell)
    return Table(columns, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write *table* to *path* as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(row.as_tuple(table.column_names))


def read_table_pair(
    source_path: str | Path,
    target_path: str | Path,
) -> tuple[Table, Table]:
    """Read two CSV files as a (source, target) table pair."""
    return read_csv(source_path), read_csv(target_path)


__all__ = ["read_csv", "write_csv", "read_table_pair", "Column"]
