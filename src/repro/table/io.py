"""CSV import/export for tables.

The benchmark datasets are materialized as CSV files so experiments can be
re-run without regenerating data, and so users can drop in their own table
pairs.

Malformed input surfaces as :class:`TableReadError` — one typed exception
(a ``ValueError`` subclass, so pre-existing callers keep working) carrying
the file and, where known, the line of the defect: invalid UTF-8, ragged
rows, CSV structure errors, and empty files all map to it instead of
leaking ``UnicodeDecodeError`` or ``csv.Error`` with no file context.  For
data that is dirty but usable, ``errors="replace"`` switches
:func:`read_csv` to a lenient mode: undecodable bytes become U+FFFD
replacement characters and ragged rows are padded/truncated to the header
arity.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.table.table import Column, Table


class TableReadError(ValueError):
    """A CSV file could not be read as a table.

    Raised with file (and, where applicable, line) context for every defect
    class :func:`read_csv` detects: empty files, undecodable bytes, ragged
    rows and CSV structure errors.  Subclasses ``ValueError`` so callers of
    the pre-typed API keep catching it.
    """


def read_csv(
    path: str | Path,
    *,
    name: str | None = None,
    errors: str = "strict",
) -> Table:
    """Read a CSV file (with a header row) into a :class:`Table`.

    All cells are read as strings.  ``errors`` selects how malformed input
    is handled:

    * ``"strict"`` (default): raise :class:`TableReadError` (a
      ``ValueError``) with file/line context for an empty file, invalid
      UTF-8, rows whose arity differs from the header, or CSV structure
      errors.
    * ``"replace"``: decode invalid bytes to U+FFFD replacement characters
      and coerce ragged rows to the header arity (short rows padded with
      empty cells, long rows truncated) — for dirty-but-usable data.
    """
    if errors not in ("strict", "replace"):
        raise ValueError(
            f'errors must be "strict" or "replace", got {errors!r}'
        )
    lenient = errors == "replace"
    path = Path(path)
    try:
        with path.open(
            newline="",
            encoding="utf-8",
            errors="replace" if lenient else "strict",
        ) as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise TableReadError(
                    f"{path} is empty; expected a header row"
                ) from None
            columns: dict[str, list[str]] = {column: [] for column in header}
            arity = len(header)
            for line_number, row in enumerate(reader, start=2):
                if len(row) != arity:
                    if lenient:
                        row = row[:arity] + [""] * (arity - len(row))
                    else:
                        raise TableReadError(
                            f"{path}:{line_number}: expected {arity} cells, "
                            f"got {len(row)}"
                        )
                for column, cell in zip(header, row):
                    columns[column].append(cell)
    except UnicodeDecodeError as error:
        raise TableReadError(
            f"{path}: not valid UTF-8 at byte {error.start} "
            f'({error.reason}); pass errors="replace" to substitute '
            "replacement characters"
        ) from error
    except csv.Error as error:
        raise TableReadError(f"{path}: malformed CSV: {error}") from error
    return Table(columns, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write *table* to *path* as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(row.as_tuple(table.column_names))


def read_table_pair(
    source_path: str | Path,
    target_path: str | Path,
) -> tuple[Table, Table]:
    """Read two CSV files as a (source, target) table pair."""
    return read_csv(source_path), read_csv(target_path)


__all__ = ["TableReadError", "read_csv", "write_csv", "read_table_pair", "Column"]
