"""A lightweight relational substrate.

The paper's system operates on pairs of tables whose join columns are
formatted differently.  This package provides the minimal relational layer
the rest of the library builds on:

* :class:`~repro.table.table.Table` / :class:`~repro.table.table.Column` —
  in-memory, column-oriented tables of strings,
* :mod:`repro.table.ops` — selection, projection, equi-join and
  transformation-join operators,
* :mod:`repro.table.io` — CSV import/export.

The substrate intentionally mirrors the subset of a relational engine the
paper depends on (string columns, equi-join) without pulling in pandas, so
the join semantics used by the experiments are explicit and testable.
"""

from repro.table.io import TableReadError, read_csv, write_csv
from repro.table.ops import equi_join, hash_join, project, rename, select
from repro.table.schema import ColumnSchema, TableSchema
from repro.table.table import Column, Row, Table

__all__ = [
    "Column",
    "ColumnSchema",
    "Row",
    "Table",
    "TableReadError",
    "TableSchema",
    "equi_join",
    "hash_join",
    "project",
    "read_csv",
    "rename",
    "select",
    "write_csv",
]
