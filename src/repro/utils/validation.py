"""Argument validation helpers.

The public API validates its inputs eagerly and raises ``ValueError`` or
``TypeError`` with a descriptive message so user errors fail fast instead of
surfacing deep inside the discovery pipeline.
"""

from __future__ import annotations

from typing import Any


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise ``TypeError`` unless *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_name}, got {type(value).__name__}"
        )


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless *value* is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_empty(value: Any, name: str) -> None:
    """Raise ``ValueError`` when *value* is empty (len() == 0)."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")


def require_range(value: float, low: float, high: float, name: str) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
