"""Text helpers used across the library.

The transformation-discovery algorithm relies on a handful of low-level
string primitives:

* enumeration of n-grams (for the row matcher's inverted index),
* enumeration of common substrings of a source/target pair (placeholders),
* splitting a string on the "common separators" the paper uses
  (whitespace and punctuation) when breaking maximal-length placeholders.

These are hot paths, so the implementations avoid building intermediate
objects where a generator suffices.
"""

from __future__ import annotations

import string
from collections.abc import Iterator

#: Characters treated as common separators when splitting maximal-length
#: placeholders into smaller candidate placeholders (Section 4.1.3 of the
#: paper: "using only space and punctuations as possible common separators
#: resolves all cases we have seen in our real datasets").
COMMON_SEPARATORS: frozenset[str] = frozenset(string.punctuation + string.whitespace)


def is_separator(char: str) -> bool:
    """Return True when *char* is a common separator (punctuation/whitespace)."""
    return char in COMMON_SEPARATORS


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return " ".join(text.split())


def tokenize(text: str) -> list[str]:
    """Split *text* into non-separator tokens.

    Tokens are maximal runs of characters that are not common separators.

    >>> tokenize("Rafiei, Davood")
    ['Rafiei', 'Davood']
    """
    tokens: list[str] = []
    current: list[str] = []
    for char in text:
        if is_separator(char):
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        tokens.append("".join(current))
    return tokens


def split_on_separators(text: str) -> list[tuple[str, bool]]:
    """Split *text* into alternating (chunk, is_separator_chunk) pieces.

    Unlike :func:`tokenize`, the separator characters are preserved so the
    caller can rebuild the original string:

    >>> split_on_separators("a, b")
    [('a', False), (', ', True), ('b', False)]
    """
    pieces: list[tuple[str, bool]] = []
    if not text:
        return pieces
    current: list[str] = [text[0]]
    current_is_sep = is_separator(text[0])
    for char in text[1:]:
        char_is_sep = is_separator(char)
        if char_is_sep == current_is_sep:
            current.append(char)
        else:
            pieces.append(("".join(current), current_is_sep))
            current = [char]
            current_is_sep = char_is_sep
    pieces.append(("".join(current), current_is_sep))
    return pieces


def all_ngrams(text: str, size: int) -> Iterator[str]:
    """Yield every character n-gram of *size* in *text* (possibly repeated)."""
    if size <= 0:
        raise ValueError(f"n-gram size must be positive, got {size}")
    for start in range(len(text) - size + 1):
        yield text[start : start + size]


def common_substrings(
    source: str,
    target: str,
    *,
    min_length: int = 1,
) -> set[str]:
    """Return all substrings of *target* that also occur in *source*.

    Only substrings of length >= *min_length* are returned.  This is the raw
    material for placeholders: a placeholder is a block of the target that can
    be produced by a non-constant transformation unit, and for copy-based
    units that means any common substring (Section 4.1 of the paper).
    """
    found: set[str] = set()
    target_len = len(target)
    for start in range(target_len):
        for end in range(start + min_length, target_len + 1):
            candidate = target[start:end]
            if candidate in source:
                found.add(candidate)
            else:
                # If target[start:end] is not in source, no longer extension
                # starting at `start` can be either.
                break
    return found


def longest_common_substring(source: str, target: str) -> str:
    """Return one longest common substring of *source* and *target*.

    Implemented with dynamic programming over character positions; ties are
    broken by the earliest occurrence in *target*.
    """
    if not source or not target:
        return ""
    best_len = 0
    best_end = 0
    previous = [0] * (len(source) + 1)
    for t_index, t_char in enumerate(target, start=1):
        current = [0] * (len(source) + 1)
        for s_index, s_char in enumerate(source, start=1):
            if t_char == s_char:
                current[s_index] = previous[s_index - 1] + 1
                if current[s_index] > best_len:
                    best_len = current[s_index]
                    best_end = t_index
        previous = current
    return target[best_end - best_len : best_end]
