"""Shared utilities: text helpers, timers, and validation."""

from repro.utils.text import (
    COMMON_SEPARATORS,
    all_ngrams,
    common_substrings,
    is_separator,
    normalize_whitespace,
    split_on_separators,
    tokenize,
)
from repro.utils.timing import StageTimer, Timer
from repro.utils.validation import (
    require_non_empty,
    require_positive,
    require_range,
    require_type,
)

__all__ = [
    "COMMON_SEPARATORS",
    "all_ngrams",
    "common_substrings",
    "is_separator",
    "normalize_whitespace",
    "split_on_separators",
    "tokenize",
    "StageTimer",
    "Timer",
    "require_non_empty",
    "require_positive",
    "require_range",
    "require_type",
]
