"""Timing helpers for per-module runtime breakdowns.

Figure 4 of the paper reports the running time of the discovery pipeline
broken down by module (unit extraction, placeholder generation, duplicate
removal, applying transformations).  :class:`StageTimer` accumulates wall
clock time per named stage so the discovery code can report that breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple start/stop wall-clock timer."""

    started_at: float | None = None
    elapsed: float = 0.0

    def start(self) -> None:
        """Start (or restart) the timer."""
        self.started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer, accumulate and return the elapsed time."""
        if self.started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        delta = time.perf_counter() - self.started_at
        self.elapsed += delta
        self.started_at = None
        return delta

    def reset(self) -> None:
        """Reset accumulated time."""
        self.started_at = None
        self.elapsed = 0.0


@dataclass
class StageTimer:
    """Accumulate elapsed time for named pipeline stages.

    Usage::

        timer = StageTimer()
        with timer.stage("placeholder_generation"):
            ...
        breakdown = timer.as_dict()
    """

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Context manager that adds the elapsed time to stage *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Manually add *seconds* to stage *name*."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def total(self) -> float:
        """Total accumulated time across all stages."""
        return sum(self.stages.values())

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the per-stage accumulated times."""
        return dict(self.stages)
