"""Block-level candidate kernels of the coverage/apply walkers.

Each op here is the vectorized form of one inner-loop step of the reference
walkers (:func:`repro.core.coverage._walk_trie_rows` /
:func:`repro.model.apply.transform_trie_rows`), paired with a pure-Python
dual computing exactly the same values.  The property tests assert the duals
elementwise; the numpy block walkers (:mod:`repro.kernels.coverage`,
:mod:`repro.kernels.apply`) inline the same expressions in their hot loops —
these named forms are the specification (and the test surface) of what those
loops compute per edge:

* :func:`partition_statuses` — split an edge's candidate rows by the per-unit
  memo state column (0 unknown / 1 output present / 2 known ``None``);
* :func:`startswith_at` — the positional prefix check at per-row offsets;
* :func:`find_positions` — first occurrence of each row's unit output in its
  target (containment *and* position in one op);
* :func:`slice_cuts` — the sorted-slice-group bisect over piece lengths;
* :func:`slice_pieces` / :func:`str_lengths` — batched slicing / lengths.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.kernels import numpy_or_none

#: Memo-state codes of the per-unit block columns (one byte per row):
#: the vectorized counterpart of the reference walker's ``False``/value/
#: ``None`` unit-output memo cells.
STATE_UNKNOWN = 0
STATE_OK = 1
STATE_NONE = 2


def partition_statuses_py(
    statuses: Sequence[int],
) -> tuple[list[int], list[int], int]:
    """Partition candidate positions by memo state.

    Returns ``(unknown_positions, ok_positions, none_count)`` over the
    positions of *statuses* — the classification an edge visit performs on
    its candidate rows before evaluating, descending, or bulk-skipping.
    """
    unknown: list[int] = []
    ok: list[int] = []
    nones = 0
    for position, status in enumerate(statuses):
        if status == STATE_UNKNOWN:
            unknown.append(position)
        elif status == STATE_OK:
            ok.append(position)
        else:
            nones += 1
    return unknown, ok, nones


def partition_statuses_np(
    statuses: Sequence[int],
) -> tuple[list[int], list[int], int]:
    """numpy :func:`partition_statuses_py`."""
    np = numpy_or_none()
    assert np is not None
    arr = np.asarray(statuses, dtype=np.uint8)
    unknown = np.flatnonzero(arr == STATE_UNKNOWN)
    ok = np.flatnonzero(arr == STATE_OK)
    return unknown.tolist(), ok.tolist(), int((arr == STATE_NONE).sum())


def startswith_at_py(
    targets: Sequence[str], prefixes: Sequence[str], starts: Sequence[int]
) -> list[bool]:
    """Per-row ``target.startswith(prefix, start)`` — the positional check."""
    return [
        target.startswith(prefix, start)
        for target, prefix, start in zip(targets, prefixes, starts)
    ]


def startswith_at_np(
    targets: Sequence[str], prefixes: Sequence[str], starts: Sequence[int]
) -> list[bool]:
    """numpy :func:`startswith_at_py`."""
    np = numpy_or_none()
    assert np is not None
    from numpy.dtypes import StringDType

    dtype = StringDType()
    return np.strings.startswith(
        np.asarray(targets, dtype=dtype),
        np.asarray(prefixes, dtype=dtype),
        np.asarray(starts, dtype=np.int64),
    ).tolist()


def find_positions_py(
    targets: Sequence[str], outputs: Sequence[str]
) -> list[int]:
    """Per-row ``target.find(output)`` — containment and position in one op."""
    return [target.find(output) for target, output in zip(targets, outputs)]


def find_positions_np(
    targets: Sequence[str], outputs: Sequence[str]
) -> list[int]:
    """numpy :func:`find_positions_py`."""
    np = numpy_or_none()
    assert np is not None
    from numpy.dtypes import StringDType

    dtype = StringDType()
    return np.strings.find(
        np.asarray(targets, dtype=dtype), np.asarray(outputs, dtype=dtype)
    ).tolist()


def slice_cuts_py(
    member_ends: Sequence[int], piece_lengths: Sequence[int]
) -> list[int]:
    """Per-row ``bisect_right(member_ends, piece_length)`` over a sorted group."""
    return [bisect_right(member_ends, length) for length in piece_lengths]


def slice_cuts_np(
    member_ends: Sequence[int], piece_lengths: Sequence[int]
) -> list[int]:
    """numpy :func:`slice_cuts_py` (``searchsorted`` with the same side)."""
    np = numpy_or_none()
    assert np is not None
    return np.searchsorted(
        np.asarray(member_ends, dtype=np.int64),
        np.asarray(piece_lengths, dtype=np.int64),
        side="right",
    ).tolist()


def slice_pieces_py(pieces: Sequence[str], start: int, end: int) -> list[str]:
    """Per-row ``piece[start:end]`` (callers guarantee ``end <= len(piece)``)."""
    return [piece[start:end] for piece in pieces]


def slice_pieces_np(pieces: Sequence[str], start: int, end: int) -> list[str]:
    """numpy :func:`slice_pieces_py`."""
    np = numpy_or_none()
    assert np is not None
    from numpy.dtypes import StringDType

    return np.strings.slice(
        np.asarray(pieces, dtype=StringDType()), start, end
    ).tolist()


def str_lengths_py(texts: Sequence[str]) -> list[int]:
    """Per-row ``len(text)``."""
    return [len(text) for text in texts]


def str_lengths_np(texts: Sequence[str]) -> list[int]:
    """numpy :func:`str_lengths_py`."""
    np = numpy_or_none()
    assert np is not None
    from numpy.dtypes import StringDType

    return np.strings.str_len(np.asarray(texts, dtype=StringDType())).tolist()


__all__ = [
    "STATE_NONE",
    "STATE_OK",
    "STATE_UNKNOWN",
    "find_positions_np",
    "find_positions_py",
    "partition_statuses_np",
    "partition_statuses_py",
    "slice_cuts_np",
    "slice_cuts_py",
    "slice_pieces_np",
    "slice_pieces_py",
    "startswith_at_np",
    "startswith_at_py",
    "str_lengths_np",
    "str_lengths_py",
]
