"""numpy block walker for the apply-only engine.

:func:`transform_trie_rows_numpy` is the kernel-tier implementation of
:func:`repro.model.apply.transform_trie_rows` — same signature, equal
return value.  The apply walk has no target column, so unlike the coverage
kernel there are no statistics to preserve and no warm cache to consult:
a unit's output per row is a pure function of the row.  That makes the
aggressive form legal — when a unit is first touched in a block, its
output is computed for *every* row of the block in one vectorized pass
(``np.strings`` count/partition/slice for the split and substring
families), cached as a ``StringDType`` array plus a validity mask, and the
depth-first walk itself carries per-row prefix strings as ``StringDType``
arrays extended with ``np.strings.add``.  Rows where some unit is not
applicable are masked out exactly where the reference walk prunes them,
so each transformation's ``(row, output)`` pairs come out ascending and
identical to the serial kernel's.

The split-piece identity is shared with the coverage kernel's root slice
dispatch: ``s.split(d)[k]`` equals the first segment of the remainder
after ``k`` successive partitions, valid exactly when ``d`` occurs at
least ``max(1, k)`` times in ``s`` — the reference's
``num_pieces < 2 or piece_index >= num_pieces`` guard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.kernels import numpy_or_none

if TYPE_CHECKING:
    from repro.core.coverage import PackedTrie

#: Inputs smaller than this stay on the pure-Python walker: a serve-style
#: micro-batch cannot amortize the per-block array setup.
_APPLY_MIN_ROWS = 64

_BLOCK_ROWS = 1024


def available() -> bool:
    """Whether the numpy apply walker can run (numpy with ``np.strings``)."""
    np = numpy_or_none()
    return (
        np is not None
        and hasattr(np, "strings")
        and hasattr(np.strings, "slice")
        and hasattr(np.strings, "partition")
    )


def transform_trie_rows_numpy(
    values: Sequence[str],
    row_offset: int,
    trie: "PackedTrie",
) -> dict[int, list[tuple[int, str]]]:
    """The numpy-tier twin of :func:`repro.model.apply.transform_trie_rows`."""
    np = numpy_or_none()
    assert np is not None, "numpy apply walker requires the numpy tier"
    from numpy.dtypes import StringDType

    from repro.core.coverage import _OP_LITERAL  # noqa: PLC0415
    from repro.core.coverage import (
        _OP_SPLIT,
        _OP_SPLITSUBSTR,
        _OP_SUBSTR,
        _OP_TWOCHAR,
    )

    strings = np.strings
    string_dtype = StringDType()
    intp = np.intp

    outputs: dict[int, list[tuple[int, str]]] = {}
    root_edges = trie.root_edges
    root_terminals = trie.root_terminals
    num_rows = len(values)

    for block_start in range(0, num_rows, _BLOCK_ROWS):
        block = values[block_start : block_start + _BLOCK_ROWS]
        block_n = len(block)
        block_row0 = row_offset + block_start
        sources_np = np.array(block, dtype=string_dtype)
        source_lengths = strings.str_len(sources_np)

        # Per-block caches: the split-piece arrays shared by every unit of
        # one (delimiter, piece index), and per-unit full-block outputs.
        delim_scalars: dict[int, Any] = {}
        count_cache: dict[int, Any] = {}
        rem_cache: dict[tuple[int, int], Any] = {}
        piece_cache: dict[tuple[int, int], Any] = {}
        unit_cache: dict[int, tuple[Any, Any]] = {}

        def split_piece(delimiter: str, piece_index: int, delimiter_id: int):
            """``source.split(delimiter)[piece_index]`` for the whole block.

            Returns ``(piece, valid)`` where *valid* is the reference's
            ``num_pieces >= 2 and piece_index < num_pieces`` guard; *piece*
            is meaningful only where *valid* holds.
            """
            counts = count_cache.get(delimiter_id)
            if counts is None:
                delim_scalars[delimiter_id] = np.array(
                    delimiter, dtype=string_dtype
                )
                counts = count_cache[delimiter_id] = strings.count(
                    sources_np, delim_scalars[delimiter_id]
                )
            piece = piece_cache.get((delimiter_id, piece_index))
            if piece is None:
                sep = delim_scalars[delimiter_id]
                depth = 0
                remainder = sources_np
                for k in range(piece_index, 0, -1):
                    cached = rem_cache.get((delimiter_id, k))
                    if cached is not None:
                        depth = k
                        remainder = cached
                        break
                while depth < piece_index:
                    remainder = strings.partition(remainder, sep)[2]
                    depth += 1
                    rem_cache[(delimiter_id, depth)] = remainder
                piece = strings.partition(remainder, sep)[0]
                piece_cache[(delimiter_id, piece_index)] = piece
            valid = counts >= (piece_index if piece_index > 1 else 1)
            return piece, valid

        def unit_outputs(edge: tuple) -> tuple[Any, Any]:
            """Full-block ``(outputs, valid)`` for *edge*'s unit.

            Mirrors the reference's opcode evaluation (minus the coverage
            walk's target checks, which do not exist here); evaluating rows
            the walk never reaches is invisible — outputs are pure.
            """
            unit_id = edge[0]
            cached = unit_cache.get(unit_id)
            if cached is not None:
                return cached
            op = edge[1]
            args = edge[2]
            if op == _OP_SPLITSUBSTR:
                delimiter, piece_index, start, end, delimiter_id = args
                piece, valid = split_piece(delimiter, piece_index, delimiter_id)
                valid = valid & (strings.str_len(piece) >= end)
                out = strings.slice(piece, start, end)
            elif op == _OP_SPLIT:
                out, valid = split_piece(args[0], args[1], args[2])
            elif op == _OP_SUBSTR:
                valid = source_lengths >= args[1]
                out = strings.slice(sources_np, args[0], args[1])
            else:
                # _OP_TWOCHAR and _OP_APPLY run the reference loop per row.
                out_list: list[str] = []
                valid_list: list[bool] = []
                for source in block:
                    if op == _OP_TWOCHAR:
                        if args[0] in source or args[1] in source:
                            mode = args[5]
                            if mode == 2:
                                pieces = source.replace(args[1], args[0]).split(
                                    args[0]
                                )
                            elif mode == 1:
                                pieces = source.split(args[0])
                            elif mode == -1:
                                pieces = source.split(args[1])
                            else:
                                pieces = [source]
                        else:
                            pieces = None
                        if pieces is None or args[2] >= len(pieces):
                            output = None
                        else:
                            piece_str = pieces[args[2]]
                            output = (
                                piece_str[args[3] : args[4]]
                                if args[4] <= len(piece_str)
                                else None
                            )
                    else:
                        output = args[0](source)
                    if output is None:
                        out_list.append("")
                        valid_list.append(False)
                    else:
                        out_list.append(output)
                        valid_list.append(True)
                out = np.array(out_list, dtype=string_dtype)
                valid = np.array(valid_list, dtype=bool)
            unit_cache[unit_id] = (out, valid)
            return out, valid

        all_slots = np.arange(block_n, dtype=intp)
        empty_prefixes = np.zeros(block_n, dtype=string_dtype)
        stack: list[tuple[list, list[int], Any, Any]] = [
            (root_edges, root_terminals, all_slots, empty_prefixes)
        ]
        push = stack.append
        pop = stack.pop
        while stack:
            edges, terminals, slots, prefixes = pop()
            if terminals:
                rows = (slots + block_row0).tolist()
                prefix_list = prefixes.tolist()
                for index in terminals:
                    outputs.setdefault(index, []).extend(
                        zip(rows, prefix_list)
                    )
            for edge in edges:
                op = edge[1]
                if op == _OP_LITERAL:
                    if args_text := edge[2][0]:
                        push(
                            (
                                edge[3],
                                edge[4],
                                slots,
                                strings.add(prefixes, args_text),
                            )
                        )
                    else:
                        push((edge[3], edge[4], slots, prefixes))
                    continue
                out, valid = unit_outputs(edge)
                ok = valid[slots]
                num_ok = int(ok.sum())
                if not num_ok:
                    continue
                if num_ok == len(slots):
                    child_slots = slots
                    child_prefixes = strings.add(prefixes, out[slots])
                else:
                    child_slots = slots[ok]
                    child_prefixes = strings.add(
                        prefixes[ok], out[child_slots]
                    )
                push((edge[3], edge[4], child_slots, child_prefixes))

    return outputs


__all__ = ["available", "transform_trie_rows_numpy", "_APPLY_MIN_ROWS"]
