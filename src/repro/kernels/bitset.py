"""Bitset kernels over packed covered-row masks.

Covered-row sets are arbitrary-precision Python ints (bit *r* = row *r*,
little-endian bytes), the currency of the CELF cover selection in
:mod:`repro.core.cover` and the joiner's support filter.  The ops here —
pack, materialize, union, popcount — each have a pure-Python reference and a
numpy implementation working on the masks' byte representation
(``np.packbits``/``np.unpackbits``/``np.bitwise_or.reduce``), asserted
value-identical by the kernel property tests.

Dispatch goes through :func:`repro.kernels.active_tier`; inside the numpy
tier small inputs still take the Python path (the ``_NP_MIN_*`` cutoffs) —
a scheduling decision only, the returned values never depend on it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.kernels import numpy_or_none

#: Below these sizes the fixed cost of the int<->ndarray conversions exceeds
#: the vector win; the dispatchers fall back to the Python reference.
_NP_MIN_ROWS = 512
_NP_MIN_MASK_BYTES = 256


# --------------------------------------------------------------------------- #
# Pure-Python references (the spec)
# --------------------------------------------------------------------------- #
def mask_from_rows_py(rows: Iterable[int]) -> int:
    """Pack non-negative row ids into an integer bitmask (bit r = row r)."""
    rows = list(rows)
    if not rows:
        return 0
    buffer = bytearray((max(rows) >> 3) + 1)
    for row in rows:
        buffer[row >> 3] |= 1 << (row & 7)
    return int.from_bytes(buffer, "little")


def rows_from_mask_py(mask: int) -> list[int]:
    """The set bits of *mask* as an ascending list of row ids."""
    if mask == 0:
        return []
    if mask < 0:
        raise ValueError(f"row masks must be non-negative, got {mask}")
    data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
    rows: list[int] = []
    append = rows.append
    for byte_index, byte in enumerate(data):
        if byte:
            base = byte_index << 3
            while byte:
                low = byte & -byte
                append(base + low.bit_length() - 1)
                byte ^= low
    return rows


def union_masks_py(masks: Iterable[int]) -> int:
    """Bitwise union of *masks*."""
    union = 0
    for mask in masks:
        union |= mask
    return union


def popcounts_py(masks: Sequence[int]) -> list[int]:
    """Per-mask set-bit counts."""
    return [mask.bit_count() for mask in masks]


# --------------------------------------------------------------------------- #
# numpy implementations
# --------------------------------------------------------------------------- #
def mask_from_rows_np(rows: Iterable[int]) -> int:
    """numpy :func:`mask_from_rows_py`: scatter into a bit table, pack."""
    np = numpy_or_none()
    assert np is not None
    row_arr = np.asarray(list(rows) if not hasattr(rows, "__len__") else rows)
    if row_arr.size == 0:
        return 0
    bits = np.zeros(int(row_arr.max()) + 1, dtype=np.uint8)
    bits[row_arr] = 1
    packed = np.packbits(bits, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def rows_from_mask_np(mask: int) -> list[int]:
    """numpy :func:`rows_from_mask_py`: unpack bits, report the set indices."""
    np = numpy_or_none()
    assert np is not None
    if mask == 0:
        return []
    if mask < 0:
        raise ValueError(f"row masks must be non-negative, got {mask}")
    data = np.frombuffer(
        mask.to_bytes((mask.bit_length() + 7) >> 3, "little"), dtype=np.uint8
    )
    bits = np.unpackbits(data, bitorder="little")
    return np.flatnonzero(bits).tolist()


def union_masks_np(masks: Sequence[int]) -> int:
    """numpy :func:`union_masks_py`: byte-matrix ``bitwise_or`` reduction."""
    np = numpy_or_none()
    assert np is not None
    masks = list(masks)
    if not masks:
        return 0
    width = max((mask.bit_length() + 7) >> 3 for mask in masks)
    if width == 0:
        return 0
    table = np.zeros((len(masks), width), dtype=np.uint8)
    for index, mask in enumerate(masks):
        data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
        table[index, : len(data)] = np.frombuffer(data, dtype=np.uint8)
    union = np.bitwise_or.reduce(table, axis=0)
    return int.from_bytes(union.tobytes(), "little")


def popcounts_np(masks: Sequence[int]) -> list[int]:
    """numpy :func:`popcounts_py`: per-byte popcount table, summed per mask."""
    np = numpy_or_none()
    assert np is not None
    table = _byte_popcount_table(np)
    counts: list[int] = []
    for mask in masks:
        if mask == 0:
            counts.append(0)
            continue
        data = np.frombuffer(
            mask.to_bytes((mask.bit_length() + 7) >> 3, "little"), dtype=np.uint8
        )
        counts.append(int(table[data].sum()))
    return counts


_POPCOUNT_TABLE = None


def _byte_popcount_table(np):  # type: ignore[no-untyped-def]
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        _POPCOUNT_TABLE = np.array(
            [bin(byte).count("1") for byte in range(256)], dtype=np.uint16
        )
    return _POPCOUNT_TABLE


# --------------------------------------------------------------------------- #
# Tier dispatchers
# --------------------------------------------------------------------------- #
def mask_from_rows(rows: Iterable[int]) -> int:
    """Pack row ids into a bitmask via the active kernel tier."""
    rows = rows if isinstance(rows, list) else list(rows)
    if numpy_or_none() is not None and len(rows) >= _NP_MIN_ROWS:
        return mask_from_rows_np(rows)
    return mask_from_rows_py(rows)


def rows_from_mask(mask: int) -> list[int]:
    """Materialize a bitmask's row ids via the active kernel tier."""
    if (
        numpy_or_none() is not None
        and mask > 0
        and ((mask.bit_length() + 7) >> 3) >= _NP_MIN_MASK_BYTES
    ):
        return rows_from_mask_np(mask)
    return rows_from_mask_py(mask)


def union_masks(masks: Iterable[int]) -> int:
    """Union of covered-row masks via the active kernel tier."""
    masks = masks if isinstance(masks, list) else list(masks)
    if numpy_or_none() is not None and len(masks) >= _NP_MIN_ROWS:
        return union_masks_np(masks)
    return union_masks_py(masks)


def popcounts(masks: Sequence[int]) -> list[int]:
    """Per-mask popcounts via the active kernel tier.

    ``int.bit_count`` is already a C primitive, so the Python path wins for
    short masks; the byte-table path takes over for wide ones.
    """
    if numpy_or_none() is not None and masks:
        widest = max(mask.bit_length() for mask in masks) >> 3
        if widest >= _NP_MIN_MASK_BYTES and len(masks) >= 8:
            return popcounts_np(masks)
    return popcounts_py(masks)


__all__ = [
    "mask_from_rows",
    "mask_from_rows_np",
    "mask_from_rows_py",
    "popcounts",
    "popcounts_np",
    "popcounts_py",
    "rows_from_mask",
    "rows_from_mask_np",
    "rows_from_mask_py",
    "union_masks",
    "union_masks_np",
    "union_masks_py",
]
