"""numpy block walker for the batched coverage engine.

:func:`walk_trie_rows_numpy` is the kernel-tier implementation of
:func:`repro.core.coverage._walk_trie_rows` — same signature, same return
value, byte-identical covered rows *and* statistics.  The serial Python
walker remains the executable spec; this walker reorganizes the identical
per-(edge, row) classifications into array form:

* Per-block state is transposed from row-major to **column-major**: one
  ``bytearray`` column per unit (memo state: 0 unknown / 1 output known /
  2 known ``None``) and per required-set (0 unknown / 1 holds / 2 fails),
  each wrapped in a zero-copy ``np.frombuffer`` view so a single fancy
  gather classifies every candidate row of an edge at once.  Unit outputs
  live in per-unit dicts keyed by row slot.  All columns are pooled and
  reused across blocks (the small-fix satellite applies the same pooling to
  the Python walker).
* Edge visits carrying at least :data:`_VECTOR_MIN_ROWS` candidate rows run
  the vector path: gather memo states, evaluate only the unknown rows in a
  Python loop that mirrors the reference opcode semantics exactly, then
  classify survivors with ``np.strings.startswith`` at per-row prefix
  offsets.  Smaller visits run the reference's own per-row loops — the
  cutoff is a scheduling decision, both paths produce identical values.
* Root slice groups batch the shared piece per group into a ``StringDType``
  array; the sorted-by-end bulk skip becomes one ``searchsorted`` and the
  containment-and-position check one ``np.strings.find`` per member.
* The Aho-Corasick root-literal scan stays in Python: one automaton pass
  per target is already O(len + matches), and a vectorized presence table
  would do ~1000x the string work.

Why the results cannot drift: every statistic is a sum of per-(edge, row)
classifications, and each classification depends only on per-row memo/cache
state whose value is independent of *when* it is computed (a unit's output
for a row is a pure function of the row; a required set holds or fails per
row regardless of which edge asks first).  Reordering rows into arrays
changes evaluation timing only.  Candidate arrays stay ascending under
boolean masking, each terminal node is visited once per block, and blocks
advance in row order — so covered-row lists come out in the reference's
exact order too.
"""

from __future__ import annotations

from time import monotonic
from typing import TYPE_CHECKING, Any, Sequence

from repro.kernels import numpy_or_none

if TYPE_CHECKING:
    from repro.core.pairs import RowPair
    from repro.core.coverage import PackedTrie
    from repro.core.units import TransformationUnit

#: Edge visits with fewer candidate rows than this run the reference's
#: per-row Python loops instead of paying numpy's fixed per-call overhead.
#: Purely a scheduling cutoff — values are identical on both paths.
_VECTOR_MIN_ROWS = 32

#: Unit evaluations over fewer unknown rows than this run the reference's
#: per-row loop inside :func:`evaluate_unit`; larger batches use the shared
#: per-block piece arrays.  Same values either way.
_VECTOR_MIN_EVAL = 8

#: Rows per block for the numpy walker.  The reference walker blocks at
#: :data:`repro.core.coverage._WALK_BLOCK_ROWS` (1024) to bound per-row
#: cache memory, but ``np.strings`` ufuncs carry a large fixed per-call
#: cost — a bigger block divides every per-block, per-group and per-node
#: numpy call count by the same factor while the per-row work is invariant.
#: Block size is results-neutral: blocks advance in row order and every
#: per-row classification depends only on that row.
_NUMPY_BLOCK_ROWS = 32768


def available() -> bool:
    """Whether the numpy walker can run (numpy tier with ``np.strings``)."""
    np = numpy_or_none()
    return (
        np is not None
        and hasattr(np, "strings")
        and hasattr(np.strings, "slice")
        and hasattr(np.strings, "startswith")
    )


def walk_trie_rows_numpy(
    pairs: "Sequence[RowPair]",
    row_offset: int,
    trie: "PackedTrie",
    non_covering_units: "Sequence[set[TransformationUnit]]",
    use_cache: bool,
    deadline: float | None = None,
) -> tuple[dict[int, list[int]], int, int, int, int]:
    """The numpy-tier twin of :func:`repro.core.coverage._walk_trie_rows`."""
    np = numpy_or_none()
    assert np is not None, "numpy walker requires the numpy tier"
    from numpy.dtypes import StringDType

    from repro.core.coverage import _OP_LITERAL  # noqa: PLC0415
    from repro.core.coverage import (
        _OP_SPLIT,
        _OP_SPLITSUBSTR,
        _OP_SUBSTR,
        _OP_TWOCHAR,
    )

    strings = np.strings
    string_dtype = StringDType()
    intp = np.intp

    covered: dict[int, list[int]] = {}
    hits = misses = applications = 0
    rows_processed = 0
    root_terminals = trie.root_terminals
    root_other_edges = trie.root_other_edges
    root_literal_by_text = trie.root_literal_by_text
    root_literal_total = trie.root_literal_total
    root_slice_groups = trie.root_slice_groups
    req_sets = trie.req_sets
    goto, fail, outputs_table = trie.automaton
    num_texts = len(trie.anchor_texts)
    num_reqs = len(req_sets)
    num_units = trie.num_units
    num_delimiters = trie.num_delimiters
    num_rows = len(pairs)

    # Pooled per-block state (allocated at the first block, reset afterwards).
    # Unit memo state lives in one (num_units x block) uint8 matrix backed by
    # a shared bytearray: the Python paths index per-unit memoryview rows
    # while the vector path gathers whole (edge x row) submatrices per node.
    # Required-set viability is *eager*: after the presence scan, one
    # vectorized pass fills the (num_reqs+1 x block) matrix (row 0 is an
    # always-viable sentinel addressed by ``req_id + 1`` when ``req_id`` is
    # -1).  Eagerness cannot show up in the results: a required set holds or
    # fails per row no matter when — or whether — an edge asks.
    unit_buf = bytearray(0)
    unit_states: list = []
    unit_views: list[Any] = []
    unit_mat: Any = None
    unit_outs: list[dict[int, str]] = []
    req_buf = bytearray(0)
    req_cols: list = []
    req_views: list[Any] = []
    req_mat: Any = None
    presence_buf = bytearray(0)
    presences: list = []
    presence_mat: Any = None
    split_caches: list[list] = []
    tsplit_caches: list[dict] = []
    matched_lists: list = []
    none_template: list = [None] * num_delimiters
    block_cap = min(num_rows, _NUMPY_BLOCK_ROWS) or 1
    if deadline is not None:
        from repro.core.coverage import _WALK_BLOCK_ROWS  # noqa: PLC0415

        # A budgeted walk must cut at the reference engine's row
        # boundaries: the deadline is only checked between blocks, and the
        # fully-processed prefix (rows_processed and the covered rows it
        # implies) is part of the identical-results contract — a bigger
        # block would make an expired budget process more rows than the
        # pure-Python tier does.
        block_cap = min(block_cap, _WALK_BLOCK_ROWS)
    zero_unit_buf = bytes(num_units * block_cap)
    zero_presence_buf = bytes(num_texts * block_cap)
    first_block = True

    # Requirement sets regrouped for the eager pass: the many single-text
    # sets fill their rows in one fancy assignment, the few multi-text sets
    # reduce with ``min`` (presence is 0/1, so min==1 iff all present).
    req_single_rows: Any = None
    req_single_cols: Any = None
    req_multi: list[tuple[int, Any]] = []
    if num_reqs:
        singles = [
            (rid, req_set[0])
            for rid, req_set in enumerate(req_sets)
            if len(req_set) == 1
        ]
        req_single_rows = np.array([rid + 1 for rid, _ in singles], dtype=intp)
        req_single_cols = np.array([col for _, col in singles], dtype=intp)
        req_multi = [
            (rid + 1, np.asarray(req_set, dtype=intp))
            for rid, req_set in enumerate(req_sets)
            if len(req_set) > 1
        ]

    for block_start in range(0, num_rows, block_cap):
        if deadline is not None and block_start and monotonic() >= deadline:
            break
        block = pairs[block_start : block_start + block_cap]
        block_n = len(block)
        rows_processed = block_start + block_n
        sources = [pair.source for pair in block]
        targets = [pair.target for pair in block]
        target_lengths = [len(target) for target in targets]
        targets_np = np.array(targets, dtype=string_dtype)
        sources_np = np.array(sources, dtype=string_dtype)
        source_lengths = strings.str_len(sources_np)

        # Shared per-block split-piece arrays: ``split(d)[k]`` for the whole
        # block, built once per (delimiter, piece index) from cached
        # partition remainders and reused by the root slice dispatch and
        # the batched unit evaluator alike.
        delim_scalars: dict[int, Any] = {}
        count_cache: dict[int, Any] = {}
        rem_cache: dict[tuple[int, int], Any] = {}
        piece_cache: dict[tuple[int, int], Any] = {}
        plen_cache: dict[tuple[int, int], Any] = {}

        def split_piece(
            delimiter: str, piece_index: int, delimiter_id: int
        ) -> tuple[Any, Any]:
            """Block-wide ``source.split(delimiter)[piece_index]``.

            Returns ``(piece, valid)``: *valid* is the reference's
            ``num_pieces >= 2 and piece_index < num_pieces`` guard (the
            delimiter occurs at least ``max(1, piece_index)`` times), and
            *piece* is meaningful only where *valid* holds.
            """
            counts = count_cache.get(delimiter_id)
            if counts is None:
                delim_scalars[delimiter_id] = np.array(
                    delimiter, dtype=string_dtype
                )
                counts = count_cache[delimiter_id] = strings.count(
                    sources_np, delim_scalars[delimiter_id]
                )
            piece = piece_cache.get((delimiter_id, piece_index))
            if piece is None:
                sep = delim_scalars[delimiter_id]
                depth = 0
                remainder = sources_np
                for k in range(piece_index, 0, -1):
                    cached = rem_cache.get((delimiter_id, k))
                    if cached is not None:
                        depth = k
                        remainder = cached
                        break
                while depth < piece_index:
                    remainder = strings.partition(remainder, sep)[2]
                    depth += 1
                    rem_cache[(delimiter_id, depth)] = remainder
                piece = strings.partition(remainder, sep)[0]
                piece_cache[(delimiter_id, piece_index)] = piece
            return piece, counts >= (piece_index if piece_index > 1 else 1)
        block_cache = non_covering_units[block_start : block_start + block_n]
        warms = [use_cache and bool(cache) for cache in block_cache]
        warm_any = True in warms

        if first_block:
            first_block = False
            unit_buf = bytearray(num_units * block_cap)
            unit_mat = np.frombuffer(unit_buf, dtype=np.uint8).reshape(
                num_units, block_cap
            )
            unit_mem = memoryview(unit_buf)
            unit_states = [
                unit_mem[i * block_cap : (i + 1) * block_cap]
                for i in range(num_units)
            ]
            unit_views = list(unit_mat)
            unit_outs = [{} for _ in range(num_units)]
            req_buf = bytearray((num_reqs + 1) * block_cap)
            req_mat = np.frombuffer(req_buf, dtype=np.uint8).reshape(
                num_reqs + 1, block_cap
            )
            req_mat[0] = 1
            req_mem = memoryview(req_buf)
            req_cols = [
                req_mem[
                    (i + 1) * block_cap : (i + 2) * block_cap
                ]
                for i in range(num_reqs)
            ]
            req_views = list(req_mat[1:]) if num_reqs else []
            presence_buf = bytearray(num_texts * block_cap)
            presence_mat = np.frombuffer(presence_buf, dtype=np.uint8).reshape(
                block_cap, num_texts
            )
            presence_mem = memoryview(presence_buf)
            presences = [
                presence_mem[i * num_texts : (i + 1) * num_texts]
                for i in range(block_cap)
            ]
            split_caches = [
                [None] * num_delimiters for _ in range(block_cap)
            ]
            tsplit_caches = [{} for _ in range(block_cap)]
            matched_lists = [None] * block_cap
        else:
            unit_buf[:] = zero_unit_buf
            for out in unit_outs:
                out.clear()
            presence_buf[:] = zero_presence_buf
            for cache in split_caches:
                cache[:] = none_template
            for tcache in tsplit_caches:
                tcache.clear()

        def evaluate_unit(edge: tuple, unknown_np):
            """Evaluate *edge*'s unit for the given rows, writing the memo.

            The vectorized branch additionally reports its outcome so the
            caller can batch the positional compare: ``(good_slots,
            good_outputs)`` arrays when rows passed, ``None`` when the
            vector path ran but nothing passed.  The per-row fallback
            returns ``False`` — the caller must re-gather memo state, since
            rows may have become OK without arrays to show for it.

            Mirrors the reference walker's opcode evaluation — including the
            warm-cache consult and the output-in-target containment check —
            writing memo state 1 (+ output) or 2 per row.  Large batches of
            split/substring units evaluate in numpy off the shared per-block
            piece arrays (computing a piece for rows that never ask is
            invisible: outputs are pure functions of the row, and the memo
            is written only for the rows requested); everything else runs
            the reference's per-row loop.
            """
            op = edge[1]
            args = edge[2]
            unit = edge[7]
            uid = edge[0]
            st_col = unit_states[uid]
            out_col = unit_outs[uid]
            output: str | None
            if unknown_np.size >= _VECTOR_MIN_EVAL and (
                op == _OP_SPLITSUBSTR or op == _OP_SPLIT or op == _OP_SUBSTR
            ):
                sub = unknown_np
                if warm_any:
                    kept = [
                        slot
                        for slot in sub.tolist()
                        if not (warms[slot] and unit in block_cache[slot])
                    ]
                    if len(kept) != int(sub.size):
                        unit_view = unit_views[uid]
                        unit_view[sub] = 2
                        if not kept:
                            return
                        sub = np.asarray(kept, dtype=intp)
                if op == _OP_SUBSTR:
                    start, end = args
                    ok = source_lengths[sub] >= end
                    outs = strings.slice(sources_np[sub], start, end)
                elif op == _OP_SPLIT:
                    delimiter, piece_index, delimiter_id = args
                    piece_np, valid = split_piece(
                        delimiter, piece_index, delimiter_id
                    )
                    ok = valid[sub]
                    outs = piece_np[sub]
                else:
                    delimiter, piece_index, start, end, delimiter_id = args
                    piece_np, valid = split_piece(
                        delimiter, piece_index, delimiter_id
                    )
                    plen = plen_cache.get((delimiter_id, piece_index))
                    if plen is None:
                        plen = plen_cache[(delimiter_id, piece_index)] = (
                            strings.str_len(piece_np)
                        )
                    ok = valid[sub] & (plen[sub] >= end)
                    outs = strings.slice(piece_np[sub], start, end)
                # An empty output is a pass-through in the reference (the
                # containment check is skipped); find("", ...) == 0 keeps
                # it on the ok side here too.
                ok &= strings.find(targets_np[sub], outs) >= 0
                unit_view = unit_views[uid]
                bad = sub[~ok]
                if bad.size:
                    unit_view[bad] = 2
                good = sub[ok]
                if good.size:
                    unit_view[good] = 1
                    good_outs = outs[ok]
                    out_col.update(zip(good.tolist(), good_outs.tolist()))
                    return good, good_outs
                return None
            unknown_slots = unknown_np.tolist()
            if op == _OP_SPLITSUBSTR:
                delimiter, piece_index, start, end, delimiter_id = args
                for slot in unknown_slots:
                    if warm_any and warms[slot] and unit in block_cache[slot]:
                        st_col[slot] = 2
                        continue
                    cache = split_caches[slot]
                    pieces = cache[delimiter_id]
                    if pieces is None:
                        pieces = cache[delimiter_id] = sources[slot].split(
                            delimiter
                        )
                    num_pieces = len(pieces)
                    if num_pieces < 2 or piece_index >= num_pieces:
                        output = None
                    else:
                        piece = pieces[piece_index]
                        if end > len(piece):
                            output = None
                        else:
                            output = piece[start:end]
                            if output not in targets[slot]:
                                output = None
                    if output is None:
                        st_col[slot] = 2
                    else:
                        st_col[slot] = 1
                        out_col[slot] = output
            elif op == _OP_SPLIT:
                delimiter, piece_index, delimiter_id = args
                for slot in unknown_slots:
                    if warm_any and warms[slot] and unit in block_cache[slot]:
                        st_col[slot] = 2
                        continue
                    cache = split_caches[slot]
                    pieces = cache[delimiter_id]
                    if pieces is None:
                        pieces = cache[delimiter_id] = sources[slot].split(
                            delimiter
                        )
                    num_pieces = len(pieces)
                    if num_pieces < 2 or piece_index >= num_pieces:
                        output = None
                    else:
                        output = pieces[piece_index]
                        if output and output not in targets[slot]:
                            output = None
                    if output is None:
                        st_col[slot] = 2
                    else:
                        st_col[slot] = 1
                        out_col[slot] = output
            elif op == _OP_SUBSTR:
                start, end = args
                for slot in unknown_slots:
                    if warm_any and warms[slot] and unit in block_cache[slot]:
                        st_col[slot] = 2
                        continue
                    source = sources[slot]
                    if end > len(source):
                        output = None
                    else:
                        output = source[start:end]
                        if output and output not in targets[slot]:
                            output = None
                    if output is None:
                        st_col[slot] = 2
                    else:
                        st_col[slot] = 1
                        out_col[slot] = output
            else:
                for slot in unknown_slots:
                    if warm_any and warms[slot] and unit in block_cache[slot]:
                        st_col[slot] = 2
                        continue
                    source = sources[slot]
                    if op == _OP_TWOCHAR:
                        key = (args[0], args[1])
                        tcache = tsplit_caches[slot]
                        pieces = tcache.get(key, False)
                        if pieces is False:
                            if args[0] in source or args[1] in source:
                                mode = args[5]
                                if mode == 2:
                                    pieces = source.replace(
                                        args[1], args[0]
                                    ).split(args[0])
                                elif mode == 1:
                                    pieces = source.split(args[0])
                                elif mode == -1:
                                    pieces = source.split(args[1])
                                else:
                                    pieces = [source]
                            else:
                                pieces = None
                            tcache[key] = pieces
                        if pieces is None or args[2] >= len(pieces):
                            output = None
                        else:
                            piece = pieces[args[2]]
                            output = (
                                piece[args[3] : args[4]]
                                if args[4] <= len(piece)
                                else None
                            )
                    else:
                        output = args[0](source)
                    if output is not None and output:
                        if output not in targets[slot]:
                            output = None
                    if output is None:
                        st_col[slot] = 2
                    else:
                        st_col[slot] = 1
                        out_col[slot] = output
            return False

        all_slots = list(range(block_n))
        stack: list[tuple] = [
            (root_other_edges, root_terminals, all_slots, [0] * block_n)
        ]
        push = stack.append
        pop = stack.pop

        # ---------------------------------------------------------------- #
        # Root literal scan: identical to the reference (the automaton pass
        # is already O(len + matches) per target).  The dispatch over the
        # matched anchors is deferred until after the eager required-set
        # pass below so it reads viability straight out of the matrix.
        # ---------------------------------------------------------------- #
        if num_texts:
            for slot in all_slots:
                presence = presences[slot]
                matched: list[int] = []
                matched_append = matched.append
                state = 0
                for char in targets[slot]:
                    next_state = goto[state].get(char)
                    while next_state is None and state:
                        state = fail[state]
                        next_state = goto[state].get(char)
                    state = next_state if next_state is not None else 0
                    for text_id in outputs_table[state]:
                        if not presence[text_id]:
                            presence[text_id] = 1
                            matched_append(text_id)
                matched_lists[slot] = matched

        # Eager required-set viability: presence is complete for the block,
        # so every (req, row) answer is already fixed — fill the whole
        # matrix now (1 viable / 2 fails, the reference's lazily computed
        # values exactly) and never run a per-row membership loop again.
        if num_reqs:
            if num_texts:
                pm = presence_mat[:block_n]
                req_mat[req_single_rows, :block_n] = (
                    2 - pm[:, req_single_cols].T
                )
                for req_row, req_cols_np in req_multi:
                    req_mat[req_row, :block_n] = 2 - pm[:, req_cols_np].min(
                        axis=1
                    )
            else:
                req_mat[1:, :block_n] = 2

        if num_texts:
            descents: dict[int, tuple[list, list[int]]] = {}
            skipped_root = 0
            failed_root = 0
            for slot in all_slots:
                target = targets[slot]
                viable_subtree = 0
                for text_id in matched_lists[slot]:
                    edge = root_literal_by_text.get(text_id)
                    if edge is None:
                        continue
                    if req_cols[edge[6]][slot] == 2:
                        continue
                    viable_subtree += edge[5]
                    text = edge[2][0]
                    if target.startswith(text):
                        entry = descents.get(text_id)
                        if entry is None:
                            entry = descents[text_id] = ([], len(text))
                        entry[0].append(slot)
                    else:
                        failed_root += edge[5]
                skipped_root += root_literal_total - viable_subtree
            if use_cache:
                hits += skipped_root
            else:
                misses += skipped_root
            misses += failed_root
            for text_id, (slots, prefix_length) in descents.items():
                edge = root_literal_by_text[text_id]
                push((edge[3], edge[4], slots, [prefix_length] * len(slots)))

        # ---------------------------------------------------------------- #
        # Root slice dispatch, vectorized per group: the shared piece per
        # row is computed entirely in numpy — one StringDType conversion of
        # the sources per block, one ``np.strings.count`` per delimiter
        # (piece existence), and repeated ``np.strings.partition``
        # remainders per (delimiter, piece index), all cached for the
        # block.  ``split(d)[k]`` equals the first segment after k
        # partitions whenever the delimiter occurs at least ``max(1, k)``
        # times, which is exactly the reference's ``num_pieces`` guard —
        # rows failing it are masked out before the piece is ever read.
        # The sorted-by-end bulk skip becomes one searchsorted and each
        # member's containment-and-position check one np.strings.find.
        # ---------------------------------------------------------------- #
        if root_slice_groups:
            all_slots_np = np.arange(block_n, dtype=intp)
        for (
            delimiter,
            piece_index,
            delimiter_id,
            member_starts,
            member_ends,
            member_unit_ids,
            member_req_ids,
            member_subtrees,
            suffix_totals,
            group,
        ) in root_slice_groups:
            group_size = len(group)
            skipped_units = 0
            failed_units = 0
            if delimiter is None:
                piece_np = sources_np
                have_idx = all_slots_np
            else:
                piece_np, valid = split_piece(
                    delimiter, piece_index, delimiter_id
                )
                have_idx = np.flatnonzero(valid)
                missing = block_n - int(have_idx.size)
                if missing:
                    skipped_units += missing * suffix_totals[0]
            cuts = np.searchsorted(
                np.asarray(member_ends, dtype=np.int64),
                strings.str_len(piece_np)[have_idx],
                side="right",
            )
            short = cuts < group_size
            if short.any():
                skipped_units += int(
                    np.asarray(suffix_totals, dtype=np.int64)[cuts[short]].sum()
                )
            for position in range(group_size):
                cand = have_idx[cuts > position]
                if cand.size == 0:
                    continue
                req_id = member_req_ids[position]
                if req_id >= 0:
                    viability = req_views[req_id][cand]
                    bad = int((viability == 2).sum())
                    if bad:
                        skipped_units += bad * member_subtrees[position]
                        cand = cand[viability == 1]
                        if cand.size == 0:
                            continue
                member_outputs = strings.slice(
                    piece_np[cand], member_starts[position], member_ends[position]
                )
                found = strings.find(targets_np[cand], member_outputs)
                unit_view = unit_views[member_unit_ids[position]]
                none_mask = found < 0
                num_none = int(none_mask.sum())
                if num_none:
                    unit_view[cand[none_mask]] = 2
                    skipped_units += num_none * member_subtrees[position]
                if num_none != cand.size:
                    ok_mask = ~none_mask
                    ok = cand[ok_mask]
                    unit_view[ok] = 1
                    out_col = unit_outs[member_unit_ids[position]]
                    for slot, output in zip(
                        ok.tolist(), member_outputs[ok_mask].tolist()
                    ):
                        out_col[slot] = output
                    zero_mask = found[ok_mask] == 0
                    num_zero = int(zero_mask.sum())
                    failed_units += (int(ok.size) - num_zero) * member_subtrees[
                        position
                    ]
                    if num_zero:
                        edge = group[position]
                        output_length = (
                            member_ends[position] - member_starts[position]
                        )
                        descend = ok[zero_mask].tolist()
                        push(
                            (
                                edge[3],
                                edge[4],
                                descend,
                                [output_length] * len(descend),
                            )
                        )
            if use_cache:
                hits += skipped_units
            else:
                misses += skipped_units
            misses += failed_units

        # ---------------------------------------------------------------- #
        # Generic walk: per edge, either the vector path (memo-state gather,
        # Python evaluation of unknown rows only, batched startswith) or —
        # for small candidate sets — the reference's own per-row loops.
        # ---------------------------------------------------------------- #
        while stack:
            edges, terminals, slots, prefixes = pop()
            if terminals:
                count = len(terminals)
                reached = len(slots)
                misses += count * reached
                applications += count * reached
                for slot, prefix in zip(slots, prefixes):
                    if prefix == target_lengths[slot]:
                        row_index = row_offset + block_start + slot
                        for index in terminals:
                            covered.setdefault(index, []).append(row_index)
            num_slots = len(slots)
            vectorize = num_slots >= _VECTOR_MIN_ROWS
            if vectorize:
                # One 2D gather per node classifies every (edge, row) pair:
                # requirement viability and memo state come out as boolean
                # matrices whose row sums pre-count the dominant skip cases,
                # so a pure-skip edge costs zero further numpy calls.
                slots_np = np.asarray(slots, dtype=intp)
                prefixes_np = np.asarray(prefixes, dtype=np.int64)
                edge_units = np.array([edge[0] for edge in edges], dtype=intp)
                edge_reqs = np.array(
                    [edge[6] + 1 for edge in edges], dtype=intp
                )
                alive_mat = req_mat[np.ix_(edge_reqs, slots_np)] != 2
                status_mat = unit_mat[np.ix_(edge_units, slots_np)]
                alive_counts = alive_mat.sum(axis=1).tolist()
                unknown_mat = alive_mat & (status_mat == 0)
                need_evals = unknown_mat.any(axis=1).tolist()
                none_mat = alive_mat & (status_mat == 2)
                none_counts = none_mat.sum(axis=1).tolist()
                ok_mat = alive_mat & (status_mat == 1)
            for index, edge in enumerate(edges):
                subtree = edge[5]
                req_id = edge[6]
                op = edge[1]
                args = edge[2]
                skipped = 0
                failed = 0
                child_slots: list[int] = []
                child_prefixes: list[int] = []
                if vectorize:
                    n_alive = alive_counts[index]
                    skipped = num_slots - n_alive
                    if op == _OP_LITERAL and args[0]:
                        if n_alive:
                            if skipped:
                                row_alive = alive_mat[index]
                                sl = slots_np[row_alive]
                                pf = prefixes_np[row_alive]
                            else:
                                sl = slots_np
                                pf = prefixes_np
                            text = args[0]
                            matches = strings.startswith(
                                targets_np[sl], text, pf
                            )
                            num_matched = int(matches.sum())
                            failed = n_alive - num_matched
                            if num_matched:
                                child_slots = sl[matches].tolist()
                                child_prefixes = (
                                    pf[matches] + len(text)
                                ).tolist()
                    elif op == _OP_LITERAL:
                        if not skipped:
                            child_slots = slots
                            child_prefixes = prefixes
                        elif n_alive:
                            row_alive = alive_mat[index]
                            child_slots = slots_np[row_alive].tolist()
                            child_prefixes = prefixes_np[row_alive].tolist()
                    elif n_alive:
                        # Only rows surviving the matrix classification —
                        # descent candidates and positional failures, a
                        # small minority — run the per-row startswith loop.
                        # Batching the string compare too would cost more
                        # than it saves: materializing the per-edge outputs
                        # into a StringDType array is pricier than the
                        # compares themselves.
                        batched = False
                        if need_evals[index]:
                            fresh = evaluate_unit(
                                edge, slots_np[unknown_mat[index]]
                            )
                            if fresh is not False and not ok_mat[index].any():
                                # No memo-OK carry-over at this node, so the
                                # eval arrays ARE its whole OK set: batch the
                                # positional compare too.  Empty outputs are
                                # pass-throughs in the reference; startswith
                                # with an empty needle is True at any offset
                                # and advances the prefix by zero, which is
                                # the same thing.
                                batched = True
                                skipped += n_alive
                                if fresh is not None:
                                    good, good_outs = fresh
                                    num_good = int(good.size)
                                    skipped -= num_good
                                    pf = prefixes_np[
                                        np.searchsorted(slots_np, good)
                                    ]
                                    matches = strings.startswith(
                                        targets_np[good], good_outs, pf
                                    )
                                    num_matched = int(matches.sum())
                                    failed = num_good - num_matched
                                    if num_matched:
                                        child_slots = good[matches].tolist()
                                        child_prefixes = (
                                            pf[matches]
                                            + strings.str_len(
                                                good_outs[matches]
                                            )
                                        ).tolist()
                            else:
                                statuses = unit_views[edge[0]][slots_np]
                                row_alive = alive_mat[index]
                                num_none = int(
                                    (row_alive & (statuses == 2)).sum()
                                )
                                ok_row = row_alive & (statuses == 1)
                        else:
                            num_none = none_counts[index]
                            ok_row = ok_mat[index]
                        if not batched:
                            skipped += num_none
                        if not batched and num_none != n_alive:
                            out_col = unit_outs[edge[0]]
                            descend_slot = child_slots.append
                            descend_prefix = child_prefixes.append
                            for slot, prefix in zip(
                                slots_np[ok_row].tolist(),
                                prefixes_np[ok_row].tolist(),
                            ):
                                output = out_col[slot]
                                if output:
                                    if targets[slot].startswith(output, prefix):
                                        descend_slot(slot)
                                        descend_prefix(prefix + len(output))
                                    else:
                                        failed += 1
                                else:
                                    descend_slot(slot)
                                    descend_prefix(prefix)
                else:
                    req_col = req_cols[req_id] if req_id >= 0 else None
                    descend_slot = child_slots.append
                    descend_prefix = child_prefixes.append
                    if op == _OP_LITERAL and args[0]:
                        text = args[0]
                        text_length = len(text)
                        for slot, prefix in zip(slots, prefixes):
                            if req_col[slot] == 2:
                                skipped += 1
                            elif targets[slot].startswith(text, prefix):
                                descend_slot(slot)
                                descend_prefix(prefix + text_length)
                            else:
                                failed += 1
                    elif op == _OP_LITERAL:
                        if req_col is None:
                            child_slots = slots
                            child_prefixes = prefixes
                        else:
                            for slot, prefix in zip(slots, prefixes):
                                if req_col[slot] == 2:
                                    skipped += 1
                                else:
                                    descend_slot(slot)
                                    descend_prefix(prefix)
                    elif op == _OP_SPLITSUBSTR:
                        # The workhorse op keeps its own inlined loop with
                        # the unit's parameters in locals, exactly like the
                        # reference walker (its output is never empty, so
                        # the emptiness branch disappears too).
                        unit = edge[7]
                        st_col = unit_states[edge[0]]
                        out_col = unit_outs[edge[0]]
                        delimiter, piece_index, start, end, delimiter_id = args
                        output_length = end - start
                        for slot, prefix in zip(slots, prefixes):
                            if req_col is not None and req_col[slot] == 2:
                                skipped += 1
                                continue
                            status = st_col[slot]
                            if not status:
                                if (
                                    warm_any
                                    and warms[slot]
                                    and unit in block_cache[slot]
                                ):
                                    output = None
                                else:
                                    cache = split_caches[slot]
                                    pieces = cache[delimiter_id]
                                    if pieces is None:
                                        pieces = cache[delimiter_id] = sources[
                                            slot
                                        ].split(delimiter)
                                    num_pieces = len(pieces)
                                    if (
                                        num_pieces < 2
                                        or piece_index >= num_pieces
                                    ):
                                        output = None
                                    else:
                                        piece = pieces[piece_index]
                                        if end > len(piece):
                                            output = None
                                        else:
                                            output = piece[start:end]
                                            if output not in targets[slot]:
                                                output = None
                                if output is None:
                                    st_col[slot] = 2
                                    skipped += 1
                                    continue
                                st_col[slot] = 1
                                out_col[slot] = output
                            elif status == 2:
                                skipped += 1
                                continue
                            else:
                                output = out_col[slot]
                            if targets[slot].startswith(output, prefix):
                                descend_slot(slot)
                                descend_prefix(prefix + output_length)
                            else:
                                failed += 1
                    else:
                        unit = edge[7]
                        st_col = unit_states[edge[0]]
                        out_col = unit_outs[edge[0]]
                        for slot, prefix in zip(slots, prefixes):
                            if req_col is not None and req_col[slot] == 2:
                                skipped += 1
                                continue
                            status = st_col[slot]
                            if not status:
                                if (
                                    warm_any
                                    and warms[slot]
                                    and unit in block_cache[slot]
                                ):
                                    output = None
                                else:
                                    source = sources[slot]
                                    if op == _OP_SPLIT:
                                        cache = split_caches[slot]
                                        pieces = cache[args[2]]
                                        if pieces is None:
                                            pieces = cache[args[2]] = (
                                                source.split(args[0])
                                            )
                                        num_pieces = len(pieces)
                                        if (
                                            num_pieces < 2
                                            or args[1] >= num_pieces
                                        ):
                                            output = None
                                        else:
                                            output = pieces[args[1]]
                                    elif op == _OP_SUBSTR:
                                        output = (
                                            source[args[0] : args[1]]
                                            if args[1] <= len(source)
                                            else None
                                        )
                                    elif op == _OP_TWOCHAR:
                                        key = (args[0], args[1])
                                        tcache = tsplit_caches[slot]
                                        pieces = tcache.get(key, False)
                                        if pieces is False:
                                            if (
                                                args[0] in source
                                                or args[1] in source
                                            ):
                                                mode = args[5]
                                                if mode == 2:
                                                    pieces = source.replace(
                                                        args[1], args[0]
                                                    ).split(args[0])
                                                elif mode == 1:
                                                    pieces = source.split(
                                                        args[0]
                                                    )
                                                elif mode == -1:
                                                    pieces = source.split(
                                                        args[1]
                                                    )
                                                else:
                                                    pieces = [source]
                                            else:
                                                pieces = None
                                            tcache[key] = pieces
                                        if pieces is None or args[2] >= len(
                                            pieces
                                        ):
                                            output = None
                                        else:
                                            piece = pieces[args[2]]
                                            output = (
                                                piece[args[3] : args[4]]
                                                if args[4] <= len(piece)
                                                else None
                                            )
                                    else:
                                        output = args[0](source)
                                    if (
                                        output is not None
                                        and output
                                        and output not in targets[slot]
                                    ):
                                        output = None
                                if output is None:
                                    st_col[slot] = 2
                                    skipped += 1
                                    continue
                                st_col[slot] = 1
                                out_col[slot] = output
                            elif status == 2:
                                skipped += 1
                                continue
                            else:
                                output = out_col[slot]
                            if output:
                                if targets[slot].startswith(output, prefix):
                                    descend_slot(slot)
                                    descend_prefix(prefix + len(output))
                                else:
                                    failed += 1
                            else:
                                descend_slot(slot)
                                descend_prefix(prefix)
                if skipped:
                    if use_cache:
                        hits += skipped * subtree
                    else:
                        misses += skipped * subtree
                if failed:
                    misses += failed * subtree
                if child_slots:
                    push((edge[3], edge[4], child_slots, child_prefixes))

    return covered, hits, misses, applications, rows_processed


__all__ = ["available", "walk_trie_rows_numpy"]
