"""The vectorized kernel tier beneath the coverage/apply opcodes.

The trie walkers of :mod:`repro.core.coverage` and :mod:`repro.model.apply`
are pure-Python object code; this package provides numpy-backed batch
implementations of their per-block inner loops — bitset ops over covered-row
masks (:mod:`repro.kernels.bitset`), per-edge candidate classification over
row blocks (:mod:`repro.kernels.blocks`), and the block walkers composed
from them (:mod:`repro.kernels.coverage`, :mod:`repro.kernels.apply`).

The tier is **optional and byte-identical**: one capability probe at first
use decides whether numpy is importable, and every kernel has a pure-Python
fallback producing exactly the same values (the property tests assert the
equality op by op, and the BENCH harness asserts it end to end).  The serial
Python walkers remain the executable spec — a kernel is an implementation of
the spec, never a reinterpretation of it.

Selection rules
---------------
* ``REPRO_KERNELS=python`` forces the pure-Python tier even when numpy is
  installed (the forced-fallback CI leg uses it).
* ``REPRO_KERNELS=numpy`` demands the numpy tier and raises at resolution
  time when numpy is not importable — a silent fallback would invalidate a
  benchmark that believes it measured the vectorized tier.
* Unset (the default): numpy when it imports, python otherwise.

The resolved tier is cached per process.  Sharded workers agree with their
parent under both start methods: ``fork`` inherits the resolved module state
outright, and ``spawn`` workers re-resolve from the same environment —
:func:`use_tier` writes the override through to ``os.environ`` precisely so
re-importing children land on the tier the parent pinned.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from types import ModuleType

_ENV_VAR = "REPRO_KERNELS"
_TIERS = ("python", "numpy")

#: Resolved tier name, or None before the first probe.
_tier: str | None = None
#: The numpy module when the active tier is "numpy", else None.
_np: ModuleType | None = None


def _import_numpy() -> ModuleType | None:
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def _resolve() -> tuple[str, ModuleType | None]:
    requested = os.environ.get(_ENV_VAR, "").strip().lower()
    if requested and requested not in _TIERS:
        raise ValueError(
            f"{_ENV_VAR} must be one of {list(_TIERS)}, got {requested!r}"
        )
    if requested == "python":
        return "python", None
    numpy = _import_numpy()
    if requested == "numpy":
        if numpy is None:
            raise ImportError(
                f"{_ENV_VAR}=numpy demands the numpy tier, but numpy is not "
                "importable; install numpy or unset the override"
            )
        return "numpy", numpy
    if numpy is None:
        return "python", None
    return "numpy", numpy


def active_tier() -> str:
    """The resolved kernel tier of this process: ``"numpy"`` or ``"python"``."""
    global _tier, _np
    if _tier is None:
        _tier, _np = _resolve()
    return _tier


def numpy_or_none() -> ModuleType | None:
    """The numpy module when the numpy tier is active, else ``None``."""
    active_tier()
    return _np


def numpy_version() -> str | None:
    """numpy's version string when it is importable at all, else ``None``.

    Reported regardless of the active tier (the BENCH host block records
    both facts: which tier ran, and which numpy — if any — was available).
    """
    numpy = _import_numpy()
    return None if numpy is None else str(numpy.__version__)


def refresh_tier() -> str:
    """Drop the cached resolution and re-probe the environment."""
    global _tier, _np
    _tier, _np = _resolve()
    return _tier


@contextmanager
def use_tier(tier: str) -> Iterator[str]:
    """Pin the kernel tier for the duration of the context (tests only).

    Writes the override through to ``os.environ`` so sharded workers spawned
    inside the context resolve to the same tier, then restores both the
    environment and the cached resolution.
    """
    if tier not in _TIERS:
        raise ValueError(f"tier must be one of {list(_TIERS)}, got {tier!r}")
    previous_env = os.environ.get(_ENV_VAR)
    os.environ[_ENV_VAR] = tier
    try:
        yield refresh_tier()
    finally:
        if previous_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = previous_env
        refresh_tier()


__all__ = [
    "active_tier",
    "numpy_or_none",
    "numpy_version",
    "refresh_tier",
    "use_tier",
]
