"""Posting-filter kernels of the set-similarity matching engine.

The hot inner loop of :class:`repro.matching.setsim.SetSimRowMatcher` is the
prefix-index probe: for every prefix token of a source row, scan the token's
posting entries (candidate target rows with their prefix positions and token
counts) and keep the entries that survive the size filter and the positional
overlap bound.  Each op here is that loop in vectorized form, paired with a
pure-Python dual computing exactly the same values — same admitted rows, same
order — so the resolved kernel tier (:mod:`repro.kernels`) changes wall time
only, never the candidate set or any downstream statistic.

The filter bounds are deliberately *conservative*: comparisons carry a small
slack (:data:`FILTER_EPS`) so float rounding at exact-threshold ties can only
admit an extra candidate (later rejected by exact verification), never prune
a true match.  Both duals compute the bound expressions in the same order
with the same IEEE-754 double operations, so they agree bit for bit.
"""

from __future__ import annotations

import math
from array import array
from collections.abc import Sequence

from repro.kernels import numpy_or_none

#: Below this many posting entries the numpy path's array-conversion
#: overhead outweighs the vectorized filter; the python dual runs instead.
_NP_MIN_POSTINGS = 16

#: Below this many tokens on either side the merge loop beats
#: ``np.intersect1d``'s setup cost.
_NP_MIN_TOKENS = 64

#: Conservative slack on filter-bound comparisons.  Filters err on the side
#: of admitting a candidate, never pruning one — a borderline admission only
#: costs one exact verification, a borderline prune would lose a match.
FILTER_EPS = 1e-9


def required_overlap(
    probe_size: int, candidate_size: int, similarity: str, threshold: float
) -> float:
    """The minimum token overlap two rows of these sizes need to clear
    *threshold* — the bound every prefix/position filter compares against.

    jaccard: ``t/(1+t) * (|x|+|y|)``; cosine: ``t * sqrt(|x|*|y|)``;
    overlap: the threshold itself (an absolute count).
    """
    if similarity == "jaccard":
        return threshold / (1.0 + threshold) * (probe_size + candidate_size)
    if similarity == "cosine":
        return threshold * math.sqrt(probe_size * candidate_size)
    return float(threshold)


def filter_token_postings_py(
    rows: Sequence[int],
    positions: Sequence[int],
    sizes: Sequence[int],
    *,
    probe_size: int,
    probe_position: int,
    similarity: str,
    threshold: float,
    size_low: int,
    size_high: int,
) -> list[int]:
    """Admit the posting entries that can still reach the overlap bound.

    *rows*/*positions*/*sizes* are one token's parallel posting arrays
    (target row id ascending, the token's position in that row's ordered
    token list, and the row's token count).  An entry survives when the
    candidate's size lies in ``[size_low, size_high]`` and the positional
    upper bound on the overlap — one shared token plus whatever remains
    after both positions — still reaches the measure's required overlap.
    """
    admitted: list[int] = []
    remaining_probe = probe_size - probe_position - 1
    for entry in range(len(rows)):
        candidate_size = sizes[entry]
        if candidate_size < size_low or candidate_size > size_high:
            continue
        alpha = required_overlap(probe_size, candidate_size, similarity, threshold)
        bound = 1 + min(remaining_probe, candidate_size - positions[entry] - 1)
        if bound + FILTER_EPS >= alpha:
            admitted.append(rows[entry])
    return admitted


def _as_intc(np, values: Sequence[int]):  # type: ignore[no-untyped-def]
    """Zero-copy view of an ``array('i')`` (the engine's posting storage),
    plain conversion for any other sequence (the test surface)."""
    if isinstance(values, array):
        return np.frombuffer(values, dtype=np.intc)
    return np.asarray(values, dtype=np.intc)


def filter_token_postings_np(
    rows: Sequence[int],
    positions: Sequence[int],
    sizes: Sequence[int],
    *,
    probe_size: int,
    probe_position: int,
    similarity: str,
    threshold: float,
    size_low: int,
    size_high: int,
) -> list[int]:
    """numpy :func:`filter_token_postings_py`."""
    np = numpy_or_none()
    assert np is not None
    rows_arr = _as_intc(np, rows)
    positions_arr = _as_intc(np, positions)
    sizes_arr = _as_intc(np, sizes)
    mask = (sizes_arr >= size_low) & (sizes_arr <= size_high)
    # Same expressions, same operation order as the python dual — float64
    # scalar ops round identically, so the admitted sets agree bit for bit.
    if similarity == "jaccard":
        alpha = threshold / (1.0 + threshold) * (probe_size + sizes_arr)
    elif similarity == "cosine":
        alpha = threshold * np.sqrt(np.float64(probe_size) * sizes_arr)
    else:
        alpha = np.full(len(sizes_arr), float(threshold))
    bound = 1 + np.minimum(
        probe_size - probe_position - 1, sizes_arr - positions_arr - 1
    )
    mask &= bound + FILTER_EPS >= alpha
    return rows_arr[mask].tolist()


def intersect_count_py(left: Sequence[int], right: Sequence[int]) -> int:
    """Size of the intersection of two sorted duplicate-free int sequences."""
    i = j = count = 0
    left_len, right_len = len(left), len(right)
    while i < left_len and j < right_len:
        a, b = left[i], right[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


def intersect_count_np(left: Sequence[int], right: Sequence[int]) -> int:
    """numpy :func:`intersect_count_py`."""
    np = numpy_or_none()
    assert np is not None
    return int(
        np.intersect1d(
            _as_intc(np, left), _as_intc(np, right), assume_unique=True
        ).size
    )


# ---------------------------------------------------------------------- #
# Tier dispatchers
# ---------------------------------------------------------------------- #
def filter_token_postings(
    rows: Sequence[int],
    positions: Sequence[int],
    sizes: Sequence[int],
    *,
    probe_size: int,
    probe_position: int,
    similarity: str,
    threshold: float,
    size_low: int,
    size_high: int,
) -> list[int]:
    """Tier-dispatched :func:`filter_token_postings_py`."""
    if numpy_or_none() is not None and len(rows) >= _NP_MIN_POSTINGS:
        return filter_token_postings_np(
            rows,
            positions,
            sizes,
            probe_size=probe_size,
            probe_position=probe_position,
            similarity=similarity,
            threshold=threshold,
            size_low=size_low,
            size_high=size_high,
        )
    return filter_token_postings_py(
        rows,
        positions,
        sizes,
        probe_size=probe_size,
        probe_position=probe_position,
        similarity=similarity,
        threshold=threshold,
        size_low=size_low,
        size_high=size_high,
    )


def intersect_count(left: Sequence[int], right: Sequence[int]) -> int:
    """Tier-dispatched :func:`intersect_count_py`."""
    if numpy_or_none() is not None and min(len(left), len(right)) >= _NP_MIN_TOKENS:
        return intersect_count_np(left, right)
    return intersect_count_py(left, right)
